package workload

import (
	"testing"

	"hive/internal/social"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 42})
	b := Generate(Config{Seed: 42})
	if len(a.Users) != len(b.Users) || len(a.Papers) != len(b.Papers) {
		t.Fatal("sizes differ across runs")
	}
	for i := range a.Papers {
		if a.Papers[i].Title != b.Papers[i].Title {
			t.Fatalf("paper %d title differs: %q vs %q", i, a.Papers[i].Title, b.Papers[i].Title)
		}
	}
	c := Generate(Config{Seed: 43})
	same := len(a.Papers) == len(c.Papers)
	if same {
		diff := false
		for i := range a.Papers {
			if a.Papers[i].Title != c.Papers[i].Title {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestGenerateSizes(t *testing.T) {
	cfg := Config{Seed: 1, Users: 40, Series: 2, YearsPerSeries: 2, SessionsPerConf: 4, PapersPerSess: 2}
	ds := Generate(cfg)
	if len(ds.Users) != 40 {
		t.Fatalf("users = %d", len(ds.Users))
	}
	if len(ds.Conferences) != 4 {
		t.Fatalf("conferences = %d", len(ds.Conferences))
	}
	if len(ds.Sessions) != 16 {
		t.Fatalf("sessions = %d", len(ds.Sessions))
	}
	if len(ds.Papers) != 32 {
		t.Fatalf("papers = %d", len(ds.Papers))
	}
	if len(ds.Workpads) != 40 {
		t.Fatalf("workpads = %d", len(ds.Workpads))
	}
}

func TestGenerateReferentialIntegrity(t *testing.T) {
	ds := Generate(Config{Seed: 7})
	users := map[string]bool{}
	for _, u := range ds.Users {
		users[u.ID] = true
	}
	papers := map[string]bool{}
	for _, p := range ds.Papers {
		papers[p.ID] = true
		for _, a := range p.Authors {
			if !users[a] {
				t.Fatalf("paper %s has unknown author %s", p.ID, a)
			}
		}
		for _, c := range p.Citations {
			if !papers[c] {
				t.Fatalf("paper %s cites not-yet-generated %s (acyclicity broken)", p.ID, c)
			}
		}
	}
	sessions := map[string]bool{}
	for _, s := range ds.Sessions {
		sessions[s.ID] = true
		if !users[s.Chair] {
			t.Fatalf("session %s has unknown chair %q", s.ID, s.Chair)
		}
	}
	for _, ci := range ds.CheckIns {
		if !sessions[ci[0]] || !users[ci[1]] {
			t.Fatalf("dangling checkin %v", ci)
		}
	}
	for _, q := range ds.Questions {
		if !users[q.Author] || !papers[q.Target] {
			t.Fatalf("dangling question %+v", q)
		}
	}
}

func TestTopicHomophily(t *testing.T) {
	ds := Generate(Config{Seed: 3, Users: 80})
	same, total := 0, 0
	for _, f := range ds.Follows {
		if ds.TopicOfUser[f[0]] == ds.TopicOfUser[f[1]] {
			same++
		}
		total++
	}
	if total == 0 {
		t.Fatal("no follows generated")
	}
	// With 80% homophily and 8 topics the same-topic rate must be far
	// above the 1/8 random baseline.
	if rate := float64(same) / float64(total); rate < 0.5 {
		t.Fatalf("homophily rate = %v, want >= 0.5", rate)
	}
}

func TestLoadIntoStore(t *testing.T) {
	ds := Generate(Config{Seed: 5, Users: 30})
	st, err := social.Open("", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := ds.Load(st); err != nil {
		t.Fatal(err)
	}
	if got := len(st.Users()); got != 30 {
		t.Fatalf("store users = %d", got)
	}
	if got := len(st.Papers()); got != len(ds.Papers) {
		t.Fatalf("store papers = %d, want %d", got, len(ds.Papers))
	}
	// Every user's active workpad must exist.
	for _, u := range ds.Users {
		if _, err := st.ActiveWorkpad(u.ID); err != nil {
			t.Fatalf("no active workpad for %s: %v", u.ID, err)
		}
	}
	// Events were logged for interactions.
	if evs := st.EventsSince(0, 0); len(evs) == 0 {
		t.Fatal("no activity events recorded")
	}
}

func TestZipfCitationSkew(t *testing.T) {
	ds := Generate(Config{Seed: 9, Users: 60, Series: 2, YearsPerSeries: 2, SessionsPerConf: 8, PapersPerSess: 4})
	inDeg := map[string]int{}
	for _, p := range ds.Papers {
		for _, c := range p.Citations {
			inDeg[c]++
		}
	}
	if len(inDeg) == 0 {
		t.Fatal("no citations at all")
	}
	max, sum := 0, 0
	for _, d := range inDeg {
		sum += d
		if d > max {
			max = d
		}
	}
	mean := float64(sum) / float64(len(inDeg))
	// Preferential attachment must produce a hub well above the mean.
	if float64(max) < 3*mean {
		t.Fatalf("citation skew too flat: max=%d mean=%v", max, mean)
	}
}

func TestGenerateSmallUserPoolTerminates(t *testing.T) {
	// Regression: with fewer users per topic than requested authors,
	// generation must still terminate (bounded draws).
	for _, n := range []int{8, 12, 16} {
		ds := Generate(Config{Seed: 2, Users: n})
		if len(ds.Papers) == 0 {
			t.Fatalf("users=%d: no papers", n)
		}
		for _, p := range ds.Papers {
			if len(p.Authors) == 0 {
				t.Fatalf("paper %s has no authors", p.ID)
			}
		}
	}
}

// TestGenerateSmallUserPools: pools smaller than the topic vocabulary
// must not index past the user slice (hived -seed 4 used to panic in
// userForTopic via truncated integer division).
func TestGenerateSmallUserPools(t *testing.T) {
	for users := 1; users <= len(Topics)+1; users++ {
		ds := Generate(Config{Seed: int64(users), Users: users})
		if len(ds.Users) != users {
			t.Fatalf("users=%d: generated %d", users, len(ds.Users))
		}
	}
}
