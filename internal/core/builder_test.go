package core

import (
	"errors"
	"strings"
	"testing"

	"hive/internal/social"
)

// builderStore assembles a small but fully populated store exercising
// every derivation stage.
func builderStore(t *testing.T) *social.Store {
	t.Helper()
	st, err := social.Open("", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	users := []string{"ann", "bob", "cat", "dan", "eve"}
	for _, u := range users {
		if err := st.PutUser(social.User{ID: u, Name: strings.ToUpper(u), Interests: []string{"graphs"}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.PutConference(social.Conference{ID: "c1", Name: "EDBT", Year: 2013}); err != nil {
		t.Fatal(err)
	}
	if err := st.PutSession(social.Session{ID: "s1", ConferenceID: "c1", Title: "Graphs"}); err != nil {
		t.Fatal(err)
	}
	if err := st.PutPaper(social.Paper{ID: "p1", Title: "Graph partitioning", Abstract: "We partition graphs for scale.",
		Authors: []string{"ann", "bob"}, ConferenceID: "c1", SessionID: "s1"}); err != nil {
		t.Fatal(err)
	}
	if err := st.PutPaper(social.Paper{ID: "p2", Title: "Context networks", Abstract: "Multi-layer context graphs.",
		Authors: []string{"cat"}, Citations: []string{"p1"}}); err != nil {
		t.Fatal(err)
	}
	if err := st.PutPresentation(social.Presentation{ID: "pr1", PaperID: "p1", Owner: "ann", Text: "Slides about vertex cuts."}); err != nil {
		t.Fatal(err)
	}
	if err := st.Connect("ann", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := st.Follow("dan", "ann"); err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"ann", "cat", "dan"} {
		if err := st.CheckIn("s1", u); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.AskQuestion(social.Question{ID: "q1", Author: "eve", Target: "p1", Text: "How does it scale?"}); err != nil {
		t.Fatal(err)
	}
	if err := st.PostAnswer(social.Answer{ID: "a1", QuestionID: "q1", Author: "ann", Text: "Linearly."}); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestBuilderParallelMatchesSerial asserts that the fanned-out build
// derives exactly the same knowledge structures as a serial build.
func TestBuilderParallelMatchesSerial(t *testing.T) {
	st := builderStore(t)
	serial, err := (&Builder{Store: st, Workers: 1}).Build()
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := (&Builder{Store: st, Workers: 8}).Build()
	if err != nil {
		t.Fatal(err)
	}

	if a, b := serial.peerGraph.NumNodes(), parallel.peerGraph.NumNodes(); a != b {
		t.Fatalf("peer nodes: serial %d, parallel %d", a, b)
	}
	if a, b := serial.peerGraph.NumEdges(), parallel.peerGraph.NumEdges(); a != b {
		t.Fatalf("peer edges: serial %d, parallel %d", a, b)
	}
	if a, b := serial.kb.Len(), parallel.kb.Len(); a != b {
		t.Fatalf("kb triples: serial %d, parallel %d", a, b)
	}
	if a, b := serial.concepts.Len(), parallel.concepts.Len(); a != b {
		t.Fatalf("concepts: serial %d, parallel %d", a, b)
	}
	if a, b := len(serial.communities), len(parallel.communities); a != b {
		t.Fatalf("communities: serial %d, parallel %d", a, b)
	}
	for _, eng := range []*Engine{serial, parallel} {
		if len(eng.layers) != 4 {
			t.Fatalf("layers = %d, want 4", len(eng.layers))
		}
	}
	a, b := serial.Search("graph partitioning", 5), parallel.Search("graph partitioning", 5)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("search results differ: serial %d, parallel %d", len(a), len(b))
	}
	for i := range a {
		if a[i].DocID != b[i].DocID {
			t.Fatalf("search rank %d: serial %q, parallel %q", i, a[i].DocID, b[i].DocID)
		}
	}
}

func TestBuilderSetsSnapshotMetadata(t *testing.T) {
	st := builderStore(t)
	eng, err := (&Builder{Store: st}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if eng.BuiltAt().IsZero() {
		t.Fatal("BuiltAt not set")
	}
	if eng.BuildDuration() < 0 {
		t.Fatalf("BuildDuration = %v", eng.BuildDuration())
	}
}

// TestRunLimitedPropagatesErrorsAndPanics exercises the fan-out
// machinery directly: the first error wins and a panicking stage is
// converted into an error instead of crashing the process.
func TestRunLimitedPropagatesErrorsAndPanics(t *testing.T) {
	boom := errors.New("boom")
	tasks := []buildTask{
		{"ok", func(*Engine) error { return nil }},
		{"fail", func(*Engine) error { return boom }},
		{"ok2", func(*Engine) error { return nil }},
	}
	if err := runLimited(tasks, &Engine{}, 2); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}

	tasks = []buildTask{{"panic", func(*Engine) error { panic("kaboom") }}}
	err := runLimited(tasks, &Engine{}, 4)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panic not converted: %v", err)
	}
}

// TestBuildWorkerCounts runs the full build at several worker counts —
// including more workers than stages — to shake out races under -race.
func TestBuildWorkerCounts(t *testing.T) {
	st := builderStore(t)
	for _, w := range []int{0, 1, 2, 3, 16} {
		eng, err := (&Builder{Store: st, Workers: w}).Build()
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if eng.peerGraph == nil || eng.index == nil || eng.kb == nil || eng.concepts == nil {
			t.Fatalf("workers=%d: incomplete engine", w)
		}
	}
}
