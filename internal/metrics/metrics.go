// Package metrics is the platform's stdlib-only instrumentation layer:
// counters, gauges and fixed-bucket latency histograms with lock-free
// sync/atomic hot paths, grouped into a process-wide Registry and
// exposed in the Prometheus text format at GET /metrics.
//
// Design constraints, in order:
//
//   - The hot path must cost atomic ops only. Counter.Inc is one
//     atomic add; Histogram.Observe is one bucket add, one count add
//     and one CAS-loop float add for the sum — no locks, no maps, no
//     allocation. Label resolution (Vec.With) does take a read lock,
//     so call sites on hot paths resolve their child once and keep it.
//   - Registration is idempotent: asking for an existing family
//     returns it, so package-level instruments in different packages
//     (journal, election, the platform) can all bind the same Default
//     registry without coordination. Redeclaring a name with a
//     different type or label set panics — that is a programming
//     error, not a runtime condition.
//   - Exposition is deterministic: families sort by name, children by
//     label values, so scrapes diff cleanly and the format has a
//     golden test.
//
// Metric names are constants in this package (names.go); hivelint's
// metriccheck analyzer rejects raw-string registrations anywhere else,
// keeping the name registry closed the same way apierrcheck closes the
// error-code registry.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets is the default latency histogram layout, in seconds:
// 10µs–2.5s covers everything from a frozen-index search (~10µs) to a
// long compaction, with roughly 2.5x steps.
var DefBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5,
}

// Default is the process-wide registry: the server exposes it at
// /metrics, and package-level instruments across the platform bind to
// it at init.
var Default = New()

// Registry is a set of named metric families.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// New returns an empty registry. Most code uses Default; tests that
// assert on exposition output build their own.
func New() *Registry {
	return &Registry{fams: map[string]*family{}}
}

const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// family is one named metric with a fixed type, help string and label
// schema; children are the per-label-value instruments.
type family struct {
	name   string
	help   string
	typ    string
	labels []string
	bounds []float64 // histograms only

	mu       sync.RWMutex
	children map[string]any // label-values key -> *Counter/*Gauge/*Histogram
}

// labelKey joins label values into the child map key. 0x1f (ASCII unit
// separator) cannot appear in sane label values and keeps distinct
// tuples distinct.
func labelKey(values []string) string { return strings.Join(values, "\x1f") }

func (r *Registry) family(name, help, typ string, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("metrics: %s re-registered as %s(%d labels), was %s(%d labels)",
				name, typ, len(labels), f.typ, len(f.labels)))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("metrics: %s re-registered with label %q, was %q", name, labels[i], f.labels[i]))
			}
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, labels: labels, bounds: bounds,
		children: map[string]any{}}
	r.fams[name] = f
	return f
}

// child returns the instrument for the given label values, creating it
// with mk on first use.
func (f *family) child(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c = mk()
	f.children[key] = c
	return c
}

// --- Counter ------------------------------------------------------------------

// Counter is a monotonically increasing value. All methods are safe
// for concurrent use and lock-free.
type Counter struct {
	v  atomic.Uint64
	lv []string
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Store overwrites the value — for scrape-time mirrors of counters the
// platform already maintains elsewhere (atomics on the Platform
// struct). Not for hot-path use.
func (c *Counter) Store(n uint64) { c.v.Store(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it on
// first use. Hot paths should resolve once and keep the *Counter.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() any { return &Counter{lv: values} }).(*Counter)
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, typeCounter, labels, nil)}
}

// --- Gauge --------------------------------------------------------------------

// Gauge is a value that can go up and down, stored as float64 bits.
type Gauge struct {
	bits atomic.Uint64
	lv   []string
}

// Set overwrites the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by d (CAS loop; lock-free).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() any { return &Gauge{lv: values} }).(*Gauge)
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeVec(name, help).With()
}

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, typeGauge, labels, nil)}
}

// --- Histogram ----------------------------------------------------------------

// Histogram counts observations into fixed cumulative buckets. Observe
// is lock-free: one atomic add into the bucket, one into the count,
// and a CAS loop folding the observation into the float sum.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64
	lv     []string
}

// Observe records one observation (in the histogram's native unit —
// seconds for every latency histogram in this repo).
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Seconds()) }

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns how many observations were recorded.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, func() any {
		return &Histogram{bounds: v.f.bounds, counts: make([]atomic.Uint64, len(v.f.bounds)+1), lv: values}
	}).(*Histogram)
}

// Histogram registers (or returns) an unlabeled histogram with the
// given bucket upper bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.HistogramVec(name, help, bounds).With()
}

// HistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	return &HistogramVec{r.family(name, help, typeHistogram, labels, bounds)}
}

// --- Exposition ---------------------------------------------------------------

// WriteText renders the registry in the Prometheus text exposition
// format (version 0.0.4): `# HELP`/`# TYPE` headers, one sample line
// per child, histograms as cumulative `_bucket{le=...}` series plus
// `_sum` and `_count`. Output is deterministic: families sort by name,
// children by label values.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) write(b *strings.Builder) {
	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	kids := make([]any, len(keys))
	sort.Strings(keys)
	for i, k := range keys {
		kids[i] = f.children[k]
	}
	f.mu.RUnlock()
	if len(kids) == 0 {
		return // a Vec nobody resolved yet: no samples, no headers
	}

	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	for _, c := range kids {
		switch m := c.(type) {
		case *Counter:
			fmt.Fprintf(b, "%s%s %d\n", f.name, renderLabels(f.labels, m.lv, "", ""), m.Value())
		case *Gauge:
			fmt.Fprintf(b, "%s%s %s\n", f.name, renderLabels(f.labels, m.lv, "", ""), formatFloat(m.Value()))
		case *Histogram:
			cum := uint64(0)
			for i, bound := range m.bounds {
				cum += m.counts[i].Load()
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
					renderLabels(f.labels, m.lv, "le", formatFloat(bound)), cum)
			}
			cum += m.counts[len(m.bounds)].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, renderLabels(f.labels, m.lv, "le", "+Inf"), cum)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, renderLabels(f.labels, m.lv, "", ""), formatFloat(m.Sum()))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, renderLabels(f.labels, m.lv, "", ""), m.count.Load())
		}
	}
}

// renderLabels renders {k1="v1",...} with an optional extra pair
// (histogram le), or "" when there are no labels at all.
func renderLabels(keys, values []string, extraKey, extraVal string) string {
	if len(keys) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
