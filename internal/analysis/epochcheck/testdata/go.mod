module epochtest

go 1.23
