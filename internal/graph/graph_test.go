package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNode(t *testing.T, g *Graph, key, label string) NodeID {
	t.Helper()
	id, err := g.AddNode(key, label)
	if err != nil {
		t.Fatalf("AddNode(%q): %v", key, err)
	}
	return id
}

func TestAddNodeAssignsDenseIDs(t *testing.T) {
	g := New()
	for i, key := range []string{"a", "b", "c"} {
		id := mustNode(t, g, key, "user")
		if int(id) != i {
			t.Fatalf("node %q got id %d, want %d", key, id, i)
		}
	}
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", g.NumNodes())
	}
}

func TestAddNodeDuplicateKey(t *testing.T) {
	g := New()
	mustNode(t, g, "a", "user")
	if _, err := g.AddNode("a", "user"); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("duplicate AddNode err = %v, want ErrDuplicateKey", err)
	}
}

func TestEnsureNodeIdempotent(t *testing.T) {
	g := New()
	a := g.EnsureNode("x", "paper")
	b := g.EnsureNode("x", "paper")
	if a != b {
		t.Fatalf("EnsureNode returned %d then %d", a, b)
	}
	if g.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d, want 1", g.NumNodes())
	}
}

func TestLookup(t *testing.T) {
	g := New()
	id := mustNode(t, g, "k", "user")
	if got := g.Lookup("k"); got != id {
		t.Fatalf("Lookup = %d, want %d", got, id)
	}
	if got := g.Lookup("missing"); got != Invalid {
		t.Fatalf("Lookup(missing) = %d, want Invalid", got)
	}
}

func TestNodeErrors(t *testing.T) {
	g := New()
	if _, err := g.Node(0); !errors.Is(err, ErrNodeNotFound) {
		t.Fatalf("Node(0) on empty graph err = %v", err)
	}
	if err := g.SetNodeWeight(5, 1); !errors.Is(err, ErrNodeNotFound) {
		t.Fatalf("SetNodeWeight err = %v", err)
	}
}

func TestSetNodeWeight(t *testing.T) {
	g := New()
	id := mustNode(t, g, "a", "concept")
	if err := g.SetNodeWeight(id, 2.5); err != nil {
		t.Fatal(err)
	}
	n, err := g.Node(id)
	if err != nil {
		t.Fatal(err)
	}
	if n.Weight != 2.5 {
		t.Fatalf("Weight = %v, want 2.5", n.Weight)
	}
}

func TestAddEdgeAccumulatesSameLabel(t *testing.T) {
	g := New()
	a := mustNode(t, g, "a", "user")
	b := mustNode(t, g, "b", "user")
	if err := g.AddEdge(a, b, "follows", 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(a, b, "follows", 2); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 (weights accumulate)", g.NumEdges())
	}
	e, ok := g.EdgeBetween(a, b, "follows")
	if !ok || e.Weight != 3 {
		t.Fatalf("EdgeBetween = %+v ok=%v, want weight 3", e, ok)
	}
	// In-edge mirror must stay consistent.
	in := g.In(b)
	if len(in) != 1 || in[0].Weight != 3 {
		t.Fatalf("In(b) = %+v, want single weight-3 edge", in)
	}
}

func TestAddEdgeParallelLabels(t *testing.T) {
	g := New()
	a := mustNode(t, g, "a", "user")
	b := mustNode(t, g, "b", "user")
	for _, lbl := range []string{"coauthor", "cites", "follows"} {
		if err := g.AddEdge(a, b, lbl, 1); err != nil {
			t.Fatal(err)
		}
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3 distinct labels", g.NumEdges())
	}
	if len(g.Neighbors(a)) != 1 {
		t.Fatalf("Neighbors = %v, want single distinct neighbor", g.Neighbors(a))
	}
}

func TestAddEdgeUnknownNode(t *testing.T) {
	g := New()
	a := mustNode(t, g, "a", "user")
	if err := g.AddEdge(a, 99, "x", 1); !errors.Is(err, ErrNodeNotFound) {
		t.Fatalf("err = %v, want ErrNodeNotFound", err)
	}
	if err := g.AddEdge(99, a, "x", 1); !errors.Is(err, ErrNodeNotFound) {
		t.Fatalf("err = %v, want ErrNodeNotFound", err)
	}
}

func TestAddUndirected(t *testing.T) {
	g := New()
	a := mustNode(t, g, "a", "user")
	b := mustNode(t, g, "b", "user")
	if err := g.AddUndirected(a, b, "coauthor", 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.EdgeBetween(a, b, "coauthor"); !ok {
		t.Fatal("missing a->b")
	}
	if _, ok := g.EdgeBetween(b, a, "coauthor"); !ok {
		t.Fatal("missing b->a")
	}
}

func TestNodesByLabel(t *testing.T) {
	g := New()
	mustNode(t, g, "u1", "user")
	mustNode(t, g, "p1", "paper")
	mustNode(t, g, "u2", "user")
	users := g.NodesByLabel("user")
	if len(users) != 2 || users[0] != 0 || users[1] != 2 {
		t.Fatalf("NodesByLabel(user) = %v", users)
	}
}

func TestNodesIterationStops(t *testing.T) {
	g := New()
	for _, k := range []string{"a", "b", "c"} {
		mustNode(t, g, k, "x")
	}
	count := 0
	g.Nodes(func(Node) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("visited %d nodes, want 2", count)
	}
}

func TestClone(t *testing.T) {
	g := New()
	a := mustNode(t, g, "a", "user")
	b := mustNode(t, g, "b", "user")
	if err := g.AddEdge(a, b, "follows", 1); err != nil {
		t.Fatal(err)
	}
	c := g.Clone()
	if err := c.AddEdge(b, a, "follows", 1); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 || c.NumEdges() != 2 {
		t.Fatalf("clone not independent: g=%d c=%d", g.NumEdges(), c.NumEdges())
	}
}

func TestBFSDepths(t *testing.T) {
	g := line(t, 5) // 0-1-2-3-4 directed chain
	depths := map[NodeID]int{}
	g.BFS(0, func(id NodeID, d int) bool {
		depths[id] = d
		return true
	})
	for i := 0; i < 5; i++ {
		if depths[NodeID(i)] != i {
			t.Fatalf("depth[%d] = %d, want %d", i, depths[NodeID(i)], i)
		}
	}
}

func TestBFSRespectsCutoff(t *testing.T) {
	g := line(t, 5)
	within := g.WithinHops(0, 2)
	if len(within) != 2 {
		t.Fatalf("WithinHops = %v, want nodes 1,2", within)
	}
	if within[1] != 1 || within[2] != 2 {
		t.Fatalf("WithinHops distances = %v", within)
	}
}

func TestDFSVisitsAllReachable(t *testing.T) {
	g := New()
	ids := make([]NodeID, 4)
	for i := range ids {
		ids[i] = mustNode(t, g, string(rune('a'+i)), "x")
	}
	// a -> b, a -> c, c -> d
	_ = g.AddEdge(ids[0], ids[1], "e", 1)
	_ = g.AddEdge(ids[0], ids[2], "e", 1)
	_ = g.AddEdge(ids[2], ids[3], "e", 1)
	var seen []NodeID
	g.DFS(ids[0], func(id NodeID) bool {
		seen = append(seen, id)
		return true
	})
	if len(seen) != 4 {
		t.Fatalf("DFS visited %v, want 4 nodes", seen)
	}
	if seen[0] != ids[0] {
		t.Fatalf("DFS should start at root, got %v", seen)
	}
}

func TestComponents(t *testing.T) {
	g := New()
	// Component 1: a-b-c, Component 2: d-e, Component 3: f alone.
	keys := []string{"a", "b", "c", "d", "e", "f"}
	ids := map[string]NodeID{}
	for _, k := range keys {
		ids[k] = mustNode(t, g, k, "x")
	}
	_ = g.AddEdge(ids["a"], ids["b"], "e", 1)
	_ = g.AddEdge(ids["c"], ids["b"], "e", 1) // direction must not matter
	_ = g.AddEdge(ids["d"], ids["e"], "e", 1)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3: %v", len(comps), comps)
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 || len(comps[2]) != 1 {
		t.Fatalf("component sizes = %d,%d,%d", len(comps[0]), len(comps[1]), len(comps[2]))
	}
}

func TestShortestPathPrefersCheapRoute(t *testing.T) {
	g := New()
	a := mustNode(t, g, "a", "x")
	b := mustNode(t, g, "b", "x")
	c := mustNode(t, g, "c", "x")
	// Direct a->c is weak (weight 0.1 => cost ~0.91); a->b->c is strong.
	_ = g.AddEdge(a, c, "e", 0.1)
	_ = g.AddEdge(a, b, "e", 9)
	_ = g.AddEdge(b, c, "e", 9)
	p, err := g.ShortestPath(a, c, InverseWeightCost)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Nodes) != 3 || p.Nodes[1] != b {
		t.Fatalf("path = %v, want through b", p.Nodes)
	}
}

func TestShortestPathNoPath(t *testing.T) {
	g := New()
	a := mustNode(t, g, "a", "x")
	b := mustNode(t, g, "b", "x")
	if _, err := g.ShortestPath(a, b, UnitCost); !errors.Is(err, ErrNoPath) {
		t.Fatalf("err = %v, want ErrNoPath", err)
	}
}

func TestShortestPathSelf(t *testing.T) {
	g := New()
	a := mustNode(t, g, "a", "x")
	p, err := g.ShortestPath(a, a, UnitCost)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost != 0 || len(p.Nodes) != 1 {
		t.Fatalf("self path = %+v", p)
	}
}

func TestKShortestPaths(t *testing.T) {
	g := New()
	a := mustNode(t, g, "a", "x")
	b := mustNode(t, g, "b", "x")
	c := mustNode(t, g, "c", "x")
	d := mustNode(t, g, "d", "x")
	// Three distinct routes a->d: direct (cost 3), via b (2), via c (2.5).
	_ = g.AddEdgeCost(a, d, 3)
	_ = g.AddEdgeCost(a, b, 1)
	_ = g.AddEdgeCost(b, d, 1)
	_ = g.AddEdgeCost(a, c, 1)
	_ = g.AddEdgeCost(c, d, 1.5)
	paths, err := g.KShortestPaths(a, d, 3, func(e Edge) float64 { return e.Weight })
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3", len(paths))
	}
	if paths[0].Cost > paths[1].Cost || paths[1].Cost > paths[2].Cost {
		t.Fatalf("paths not sorted by cost: %v %v %v", paths[0].Cost, paths[1].Cost, paths[2].Cost)
	}
	if paths[0].Nodes[1] != b {
		t.Fatalf("best path should go via b, got %v", paths[0].Nodes)
	}
	// All paths must be loopless.
	for _, p := range paths {
		seen := map[NodeID]bool{}
		for _, id := range p.Nodes {
			if seen[id] {
				t.Fatalf("path %v has a loop", p.Nodes)
			}
			seen[id] = true
		}
	}
}

// AddEdgeCost is a test helper: weight doubles as cost.
func (g *Graph) AddEdgeCost(from, to NodeID, w float64) error {
	return g.AddEdge(from, to, "e", w)
}

func TestKShortestFewerThanK(t *testing.T) {
	g := line(t, 3)
	paths, err := g.KShortestPaths(0, 2, 5, UnitCost)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("got %d paths on a chain, want 1", len(paths))
	}
}

func TestPageRankUniformOnSymmetricGraph(t *testing.T) {
	g := New()
	n := 4
	ids := make([]NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = mustNode(t, g, string(rune('a'+i)), "x")
	}
	for i := 0; i < n; i++ {
		_ = g.AddEdge(ids[i], ids[(i+1)%n], "e", 1)
	}
	pr := g.PageRank(PageRankOptions{})
	for i := 1; i < n; i++ {
		if diff := pr[i] - pr[0]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("ring PageRank not uniform: %v", pr)
		}
	}
	var sum float64
	for _, v := range pr {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("PageRank sum = %v, want ~1", sum)
	}
}

func TestPageRankFavorsSink(t *testing.T) {
	g := New()
	hub := mustNode(t, g, "hub", "x")
	for i := 0; i < 5; i++ {
		u := mustNode(t, g, string(rune('a'+i)), "x")
		_ = g.AddEdge(u, hub, "e", 1)
		_ = g.AddEdge(hub, u, "e", 0.1)
	}
	pr := g.PageRank(PageRankOptions{})
	for i := 1; i < len(pr); i++ {
		if pr[hub] <= pr[i] {
			t.Fatalf("hub rank %v not above spoke %v", pr[hub], pr[i])
		}
	}
}

func TestPersonalizedPageRankConcentratesNearRestart(t *testing.T) {
	g := line(t, 10)
	// Make the chain bidirectional so mass can flow both ways.
	for i := 0; i+1 < 10; i++ {
		_ = g.AddEdge(NodeID(i+1), NodeID(i), "e", 1)
	}
	pr := g.PersonalizedPageRank(map[NodeID]float64{0: 1}, PageRankOptions{})
	if pr[0] <= pr[5] {
		t.Fatalf("restart node should dominate: pr[0]=%v pr[5]=%v", pr[0], pr[5])
	}
	if pr[1] <= pr[9] {
		t.Fatalf("rank should decay with distance: pr[1]=%v pr[9]=%v", pr[1], pr[9])
	}
}

func TestPersonalizedPageRankEmptyRestartFallsBack(t *testing.T) {
	g := line(t, 3)
	pr := g.PersonalizedPageRank(nil, PageRankOptions{})
	if len(pr) != 3 {
		t.Fatalf("len = %d", len(pr))
	}
}

func TestTopK(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.9, 0.2}
	top := TopK(scores, 3, map[NodeID]bool{2: true})
	if len(top) != 3 {
		t.Fatalf("len = %d", len(top))
	}
	if top[0] != 1 || top[1] != 3 { // ties break toward lower IDs
		t.Fatalf("top = %v", top)
	}
	if top[2] != 4 {
		t.Fatalf("top = %v, want node 4 third (node 2 skipped)", top)
	}
}

func TestTopKLargerThanInput(t *testing.T) {
	top := TopK([]float64{1, 2}, 10, nil)
	if len(top) != 2 {
		t.Fatalf("len = %d, want clamped to 2", len(top))
	}
}

func TestJaccardAndCommonNeighbors(t *testing.T) {
	g := New()
	a := mustNode(t, g, "a", "x")
	b := mustNode(t, g, "b", "x")
	shared := mustNode(t, g, "s", "x")
	onlyA := mustNode(t, g, "oa", "x")
	onlyB := mustNode(t, g, "ob", "x")
	_ = g.AddEdge(a, shared, "e", 1)
	_ = g.AddEdge(a, onlyA, "e", 1)
	_ = g.AddEdge(b, shared, "e", 1)
	_ = g.AddEdge(b, onlyB, "e", 1)
	if cn := g.CommonNeighbors(a, b); cn != 1 {
		t.Fatalf("CommonNeighbors = %d, want 1", cn)
	}
	if j := g.Jaccard(a, b); j < 0.33 || j > 0.34 {
		t.Fatalf("Jaccard = %v, want 1/3", j)
	}
	if j := g.Jaccard(onlyA, onlyB); j != 0 {
		t.Fatalf("Jaccard of leaves = %v, want 0", j)
	}
}

func TestAdamicAdarPrefersRareNeighbors(t *testing.T) {
	g := New()
	a := mustNode(t, g, "a", "x")
	b := mustNode(t, g, "b", "x")
	c := mustNode(t, g, "c", "x")
	d := mustNode(t, g, "d", "x")
	rare := mustNode(t, g, "rare", "x")
	popular := mustNode(t, g, "pop", "x")
	// rare has out-degree 2; popular has out-degree 5.
	_ = g.AddEdge(rare, a, "e", 1)
	_ = g.AddEdge(rare, b, "e", 1)
	for i, t2 := range []NodeID{a, b, c, d, rare} {
		_ = g.AddEdge(popular, t2, "e", float64(1+i))
	}
	// a,b share rare; c,d share popular.
	_ = g.AddEdge(a, rare, "e", 1)
	_ = g.AddEdge(b, rare, "e", 1)
	_ = g.AddEdge(c, popular, "e", 1)
	_ = g.AddEdge(d, popular, "e", 1)
	if g.AdamicAdar(a, b) <= g.AdamicAdar(c, d) {
		t.Fatalf("rare shared neighbor should score higher: %v vs %v",
			g.AdamicAdar(a, b), g.AdamicAdar(c, d))
	}
}

func TestCosineNeighborhood(t *testing.T) {
	g := New()
	a := mustNode(t, g, "a", "x")
	b := mustNode(t, g, "b", "x")
	x := mustNode(t, g, "x1", "x")
	y := mustNode(t, g, "y1", "x")
	_ = g.AddEdge(a, x, "e", 2)
	_ = g.AddEdge(a, y, "e", 1)
	_ = g.AddEdge(b, x, "e", 4)
	_ = g.AddEdge(b, y, "e", 2)
	// Parallel vectors: cosine must be 1.
	if cs := g.CosineNeighborhood(a, b); cs < 0.999 {
		t.Fatalf("cosine = %v, want ~1", cs)
	}
	if cs := g.CosineNeighborhood(x, y); cs != 0 {
		t.Fatalf("cosine of empty neighborhoods = %v, want 0", cs)
	}
}

// line builds a directed chain 0 -> 1 -> ... -> n-1.
func line(t *testing.T, n int) *Graph {
	t.Helper()
	g := New()
	for i := 0; i < n; i++ {
		mustNode(t, g, string(rune('A'+i)), "x")
	}
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(NodeID(i), NodeID(i+1), "e", 1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// --- Property-based tests -------------------------------------------------

// randomGraph builds a pseudo-random graph from a seed.
func randomGraph(seed int64, n, m int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New()
	for i := 0; i < n; i++ {
		g.EnsureNode(string(rune('a'+i%26))+string(rune('0'+i/26%10))+string(rune('0'+i/260)), "x")
	}
	for i := 0; i < m; i++ {
		a := NodeID(rng.Intn(n))
		b := NodeID(rng.Intn(n))
		_ = g.AddEdge(a, b, "e", rng.Float64()+0.01)
	}
	return g
}

func TestPropComponentsPartitionNodes(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 30, 40)
		comps := g.Components()
		seen := map[NodeID]bool{}
		total := 0
		for _, c := range comps {
			for _, id := range c {
				if seen[id] {
					return false // node in two components
				}
				seen[id] = true
				total++
			}
		}
		return total == g.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropPageRankSumsToOne(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 25, 60)
		pr := g.PageRank(PageRankOptions{})
		var sum float64
		for _, v := range pr {
			if v < 0 {
				return false
			}
			sum += v
		}
		return sum > 0.99 && sum < 1.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropShortestPathTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 15, 60)
		rng := rand.New(rand.NewSource(seed ^ 0x5f5f))
		a := NodeID(rng.Intn(15))
		b := NodeID(rng.Intn(15))
		c := NodeID(rng.Intn(15))
		ab, err1 := g.ShortestPath(a, b, UnitCost)
		bc, err2 := g.ShortestPath(b, c, UnitCost)
		ac, err3 := g.ShortestPath(a, c, UnitCost)
		if err1 != nil || err2 != nil || err3 != nil {
			return true // disconnected pairs carry no obligation
		}
		return ac.Cost <= ab.Cost+bc.Cost+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropJaccardSymmetricAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 20, 50)
		rng := rand.New(rand.NewSource(seed ^ 0x77))
		a := NodeID(rng.Intn(20))
		b := NodeID(rng.Intn(20))
		j1 := g.Jaccard(a, b)
		j2 := g.Jaccard(b, a)
		if j1 != j2 {
			return false
		}
		return j1 >= 0 && j1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropKShortestSortedAndLoopless(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 12, 40)
		rng := rand.New(rand.NewSource(seed ^ 0xabc))
		a := NodeID(rng.Intn(12))
		b := NodeID(rng.Intn(12))
		paths, err := g.KShortestPaths(a, b, 4, InverseWeightCost)
		if err != nil {
			return true
		}
		for i := 1; i < len(paths); i++ {
			if paths[i].Cost+1e-9 < paths[i-1].Cost {
				return false
			}
		}
		for _, p := range paths {
			seen := map[NodeID]bool{}
			for _, id := range p.Nodes {
				if seen[id] {
					return false
				}
				seen[id] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
