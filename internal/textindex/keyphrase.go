package textindex

import "sort"

// Keyphrase is a term with an extraction score.
type Keyphrase struct {
	Term  string
	Score float64
}

// ExtractKeyphrases runs TextRank (Mihalcea & Tarau, 2004) over the word
// co-occurrence graph of the text and returns the top k unigram concepts.
// This implements the "key concept extraction for automated annotations"
// service of §2.3 and feeds concept-map bootstrapping (§2.1): the scores
// become initial concept significances.
//
// The co-occurrence window is 4 content words; the graph is undirected and
// weighted by co-occurrence counts; ranking runs a damped power iteration.
func ExtractKeyphrases(text string, k int) []Keyphrase {
	words := RawTerms(text)
	if len(words) == 0 {
		return nil
	}
	const window = 4
	// Build the co-occurrence graph over surface forms; group inflected
	// variants by stem but display the most frequent surface form.
	idx := make(map[string]int)
	var vocab []string
	counts := make(map[string]map[string]int)
	surface := make(map[string]map[string]int) // stem -> surface form counts
	stems := make([]string, len(words))
	for i, w := range words {
		st := Stem(w)
		stems[i] = st
		if _, ok := idx[st]; !ok {
			idx[st] = len(vocab)
			vocab = append(vocab, st)
		}
		if surface[st] == nil {
			surface[st] = make(map[string]int)
		}
		surface[st][w]++
	}
	for i := range stems {
		for j := i + 1; j < len(stems) && j <= i+window; j++ {
			a, b := stems[i], stems[j]
			if a == b {
				continue
			}
			if counts[a] == nil {
				counts[a] = make(map[string]int)
			}
			if counts[b] == nil {
				counts[b] = make(map[string]int)
			}
			counts[a][b]++
			counts[b][a]++
		}
	}

	// Damped PageRank over the weighted co-occurrence graph.
	n := len(vocab)
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	const damping = 0.85
	outWeight := make([]float64, n)
	for a, nbrs := range counts {
		for _, c := range nbrs {
			outWeight[idx[a]] += float64(c)
		}
	}
	for iter := 0; iter < 30; iter++ {
		for i := range next {
			next[i] = (1 - damping) / float64(n)
		}
		for a, nbrs := range counts {
			ia := idx[a]
			if outWeight[ia] == 0 {
				continue
			}
			share := damping * rank[ia] / outWeight[ia]
			for b, c := range nbrs {
				next[idx[b]] += share * float64(c)
			}
		}
		rank, next = next, rank
	}

	phrases := make([]Keyphrase, 0, n)
	for st, i := range idx {
		phrases = append(phrases, Keyphrase{Term: bestSurface(surface[st]), Score: rank[i]})
	}
	sort.Slice(phrases, func(i, j int) bool {
		if phrases[i].Score != phrases[j].Score {
			return phrases[i].Score > phrases[j].Score
		}
		return phrases[i].Term < phrases[j].Term
	})
	if k > 0 && len(phrases) > k {
		phrases = phrases[:k]
	}
	return phrases
}

func bestSurface(forms map[string]int) string {
	best, bestN := "", -1
	for f, n := range forms {
		if n > bestN || (n == bestN && f < best) {
			best, bestN = f, n
		}
	}
	return best
}
