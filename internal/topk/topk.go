// Package topk provides a bounded top-k selector shared by every
// ranking hot path (search results, peer recommendation, session
// suggestion). Selecting k of n via a size-k min-heap is O(n log k)
// instead of the O(n log n) full sort.Slice the call sites used to pay,
// and allocates only the k-element buffer.
package topk

import "sort"

// Heap selects the k best items under a strict total order. The zero
// value is not usable; construct with New.
type Heap[T any] struct {
	k      int
	better func(a, b T) bool
	items  []T
}

// New returns a selector keeping the k best items pushed into it.
// better must be a strict total order ("a ranks strictly ahead of b");
// including a deterministic tie-break in better makes the selection
// byte-identical to a full sort followed by truncation. k <= 0 means
// unbounded: every pushed item is kept and Sorted returns them all.
func New[T any](k int, better func(a, b T) bool) *Heap[T] {
	cap := k
	if k <= 0 {
		cap = 16
	}
	return &Heap[T]{k: k, better: better, items: make([]T, 0, cap)}
}

// Push offers an item; it is kept only if it ranks among the k best so
// far. The heap is a min-heap on "better": the root is the worst kept
// item, evicted when a better candidate arrives.
func (h *Heap[T]) Push(x T) {
	if h.k <= 0 {
		h.items = append(h.items, x)
		return
	}
	if len(h.items) < h.k {
		h.items = append(h.items, x)
		h.up(len(h.items) - 1)
		return
	}
	if h.better(x, h.items[0]) {
		h.items[0] = x
		h.down(0)
	}
}

// Len reports how many items are currently kept.
func (h *Heap[T]) Len() int { return len(h.items) }

// Sorted drains the selector and returns the kept items best-first.
// The Heap must not be used after Sorted.
func (h *Heap[T]) Sorted() []T {
	sort.Slice(h.items, func(i, j int) bool { return h.better(h.items[i], h.items[j]) })
	return h.items
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		// Sift up while the child is worse than its parent (min-heap on
		// better: parent must be the worse of the two).
		if !h.better(h.items[parent], h.items[i]) {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		worst := i
		if l := 2*i + 1; l < n && h.better(h.items[worst], h.items[l]) {
			worst = l
		}
		if r := 2*i + 2; r < n && h.better(h.items[worst], h.items[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h.items[i], h.items[worst] = h.items[worst], h.items[i]
		i = worst
	}
}
