// Package diffusion implements Impact Neighborhood Indexing (INI) in
// diffusion graphs, the substrate behind Hive's relationship discovery
// and recommendation propagation (paper §2, ref [6], CIKM'12).
//
// A diffusion graph carries influence: a node's impact on another is the
// maximum product of edge transmission probabilities over connecting
// paths, truncated below a significance threshold epsilon. The *impact
// neighborhood* of a node is the set of nodes it impacts above epsilon.
// INI precomputes these truncated neighborhoods so that top-k impact
// queries ("who does this researcher influence most?", "which resources
// does this session's context reach?") become index lookups instead of
// repeated graph traversals.
package diffusion

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"hive/internal/graph"
)

// ErrBadParam is returned for invalid thresholds or missing nodes.
var ErrBadParam = errors.New("diffusion: bad parameter")

// Impact is one (node, strength) entry of an impact neighborhood.
type Impact struct {
	Node     graph.NodeID
	Strength float64
}

// ComputeImpacts runs a best-first (max, ×) diffusion from src over the
// graph and returns all nodes whose impact is >= epsilon, sorted by
// descending strength. Edge weights must lie in (0, 1]; weights above 1
// are treated as 1. This is the *online* evaluation that INI amortizes.
func ComputeImpacts(g *graph.Graph, src graph.NodeID, epsilon float64) ([]Impact, error) {
	if epsilon <= 0 || epsilon > 1 {
		return nil, fmt.Errorf("%w: epsilon %v not in (0,1]", ErrBadParam, epsilon)
	}
	if _, err := g.Node(src); err != nil {
		return nil, err
	}
	best := map[graph.NodeID]float64{src: 1}
	pq := &impactHeap{{Node: src, Strength: 1}}
	var out []Impact
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(Impact)
		if cur.Strength < best[cur.Node] {
			continue // stale entry
		}
		if cur.Node != src {
			out = append(out, cur)
		}
		for _, e := range g.Out(cur.Node) {
			w := e.Weight
			if w > 1 {
				w = 1
			}
			if w <= 0 {
				continue
			}
			s := cur.Strength * w
			if s < epsilon {
				continue
			}
			if s > best[e.To] {
				best[e.To] = s
				heap.Push(pq, Impact{Node: e.To, Strength: s})
			}
		}
	}
	sortImpacts(out)
	return out, nil
}

// Index is the Impact Neighborhood Index: for every node, its truncated
// impact neighborhood at threshold epsilon, precomputed once.
type Index struct {
	epsilon       float64
	neighborhoods map[graph.NodeID][]Impact
}

// BuildIndex precomputes impact neighborhoods for every node in g.
func BuildIndex(g *graph.Graph, epsilon float64) (*Index, error) {
	if epsilon <= 0 || epsilon > 1 {
		return nil, fmt.Errorf("%w: epsilon %v not in (0,1]", ErrBadParam, epsilon)
	}
	idx := &Index{
		epsilon:       epsilon,
		neighborhoods: make(map[graph.NodeID][]Impact, g.NumNodes()),
	}
	var buildErr error
	g.Nodes(func(n graph.Node) bool {
		imp, err := ComputeImpacts(g, n.ID, epsilon)
		if err != nil {
			buildErr = err
			return false
		}
		idx.neighborhoods[n.ID] = imp
		return true
	})
	if buildErr != nil {
		return nil, buildErr
	}
	return idx, nil
}

// Epsilon returns the truncation threshold the index was built with.
func (ix *Index) Epsilon() float64 { return ix.epsilon }

// Size returns the total number of stored (source, target) impact pairs —
// the index footprint reported in experiment E7.
func (ix *Index) Size() int {
	n := 0
	for _, imp := range ix.neighborhoods {
		n += len(imp)
	}
	return n
}

// TopK returns the k strongest impact targets of src from the index.
func (ix *Index) TopK(src graph.NodeID, k int) []Impact {
	nb := ix.neighborhoods[src]
	if k > len(nb) {
		k = len(nb)
	}
	return append([]Impact(nil), nb[:k]...)
}

// Impact returns the indexed impact of src on dst (0 if below epsilon).
func (ix *Index) Impact(src, dst graph.NodeID) float64 {
	for _, im := range ix.neighborhoods[src] {
		if im.Node == dst {
			return im.Strength
		}
	}
	return 0
}

// Reverse returns the sources that impact dst above epsilon, strongest
// first — "who is influenced by whom" inverted, used for peer suggestion
// ("researchers whose activity reaches you").
func (ix *Index) Reverse(dst graph.NodeID) []Impact {
	var out []Impact
	for src, nb := range ix.neighborhoods {
		for _, im := range nb {
			if im.Node == dst {
				out = append(out, Impact{Node: src, Strength: im.Strength})
				break
			}
		}
	}
	sortImpacts(out)
	return out
}

// TopKOnline answers a top-k impact query without an index, for the E7
// baseline comparison.
func TopKOnline(g *graph.Graph, src graph.NodeID, k int, epsilon float64) ([]Impact, error) {
	imp, err := ComputeImpacts(g, src, epsilon)
	if err != nil {
		return nil, err
	}
	if k > len(imp) {
		k = len(imp)
	}
	return imp[:k], nil
}

func sortImpacts(xs []Impact) {
	sort.Slice(xs, func(i, j int) bool {
		if xs[i].Strength != xs[j].Strength {
			return xs[i].Strength > xs[j].Strength
		}
		return xs[i].Node < xs[j].Node
	})
}

type impactHeap []Impact

func (h impactHeap) Len() int            { return len(h) }
func (h impactHeap) Less(i, j int) bool  { return h[i].Strength > h[j].Strength }
func (h impactHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *impactHeap) Push(x interface{}) { *h = append(*h, x.(Impact)) }
func (h *impactHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
