package textindex

import "strings"

// Stem applies the Porter stemming algorithm (Porter, 1980) to a
// lowercase word. The implementation follows the original five-step
// definition; it is dependency-free and allocation-light.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	w := []byte(word)
	w = step1a(w)
	w = step1b(w)
	w = step1c(w)
	w = step2(w)
	w = step3(w)
	w = step4(w)
	w = step5(w)
	return string(w)
}

func isVowelAt(w []byte, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	case 'y':
		return i > 0 && !isVowelAt(w, i-1)
	}
	return false
}

// measure returns the Porter "m" value of w: the number of VC sequences.
func measure(w []byte) int {
	m := 0
	i := 0
	n := len(w)
	for i < n && !isVowelAt(w, i) {
		i++
	}
	for i < n {
		for i < n && isVowelAt(w, i) {
			i++
		}
		if i >= n {
			break
		}
		m++
		for i < n && !isVowelAt(w, i) {
			i++
		}
	}
	return m
}

func containsVowel(w []byte) bool {
	for i := range w {
		if isVowelAt(w, i) {
			return true
		}
	}
	return false
}

func endsDoubleConsonant(w []byte) bool {
	n := len(w)
	return n >= 2 && w[n-1] == w[n-2] && !isVowelAt(w, n-1)
}

// endsCVC reports whether w ends consonant-vowel-consonant where the final
// consonant is not w, x or y.
func endsCVC(w []byte) bool {
	n := len(w)
	if n < 3 {
		return false
	}
	if isVowelAt(w, n-3) || !isVowelAt(w, n-2) || isVowelAt(w, n-1) {
		return false
	}
	switch w[n-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

func hasSuffix(w []byte, s string) bool {
	return len(w) >= len(s) && string(w[len(w)-len(s):]) == s
}

func replaceSuffix(w []byte, suffix, repl string, minMeasure int) ([]byte, bool) {
	if !hasSuffix(w, suffix) {
		return w, false
	}
	stem := w[:len(w)-len(suffix)]
	if measure(stem) <= minMeasure-1 {
		return w, false
	}
	return append(stem, repl...), true
}

func step1a(w []byte) []byte {
	switch {
	case hasSuffix(w, "sses"):
		return w[:len(w)-2]
	case hasSuffix(w, "ies"):
		return w[:len(w)-2]
	case hasSuffix(w, "ss"):
		return w
	case hasSuffix(w, "s"):
		return w[:len(w)-1]
	}
	return w
}

func step1b(w []byte) []byte {
	if hasSuffix(w, "eed") {
		if measure(w[:len(w)-3]) > 0 {
			return w[:len(w)-1]
		}
		return w
	}
	var stem []byte
	switch {
	case hasSuffix(w, "ed") && containsVowel(w[:len(w)-2]):
		stem = w[:len(w)-2]
	case hasSuffix(w, "ing") && containsVowel(w[:len(w)-3]):
		stem = w[:len(w)-3]
	default:
		return w
	}
	switch {
	case hasSuffix(stem, "at"), hasSuffix(stem, "bl"), hasSuffix(stem, "iz"):
		return append(stem, 'e')
	case endsDoubleConsonant(stem):
		last := stem[len(stem)-1]
		if last != 'l' && last != 's' && last != 'z' {
			return stem[:len(stem)-1]
		}
		return stem
	case measure(stem) == 1 && endsCVC(stem):
		return append(stem, 'e')
	}
	return stem
}

func step1c(w []byte) []byte {
	if hasSuffix(w, "y") && containsVowel(w[:len(w)-1]) {
		return append(w[:len(w)-1], 'i')
	}
	return w
}

var step2Rules = []struct{ suffix, repl string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
	{"anci", "ance"}, {"izer", "ize"}, {"abli", "able"}, {"alli", "al"},
	{"entli", "ent"}, {"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"},
	{"ation", "ate"}, {"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"},
	{"fulness", "ful"}, {"ousness", "ous"}, {"aliti", "al"},
	{"iviti", "ive"}, {"biliti", "ble"},
}

func step2(w []byte) []byte {
	for _, r := range step2Rules {
		if out, ok := replaceSuffix(w, r.suffix, r.repl, 1); ok {
			return out
		}
		if hasSuffix(w, r.suffix) {
			return w
		}
	}
	return w
}

var step3Rules = []struct{ suffix, repl string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(w []byte) []byte {
	for _, r := range step3Rules {
		if out, ok := replaceSuffix(w, r.suffix, r.repl, 1); ok {
			return out
		}
		if hasSuffix(w, r.suffix) {
			return w
		}
	}
	return w
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(w []byte) []byte {
	for _, s := range step4Suffixes {
		if !hasSuffix(w, s) {
			continue
		}
		stem := w[:len(w)-len(s)]
		if measure(stem) <= 1 {
			return w
		}
		if s == "ion" {
			last := stem[len(stem)-1]
			if last != 's' && last != 't' {
				return w
			}
		}
		return stem
	}
	return w
}

func step5(w []byte) []byte {
	// Step 5a.
	if hasSuffix(w, "e") {
		stem := w[:len(w)-1]
		m := measure(stem)
		if m > 1 || (m == 1 && !endsCVC(stem)) {
			w = stem
		}
	}
	// Step 5b.
	if measure(w) > 1 && endsDoubleConsonant(w) && strings.HasSuffix(string(w), "ll") {
		w = w[:len(w)-1]
	}
	return w
}
