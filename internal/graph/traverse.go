package graph

// BFS visits nodes in breadth-first order from start, following outgoing
// edges, and calls visit with each node and its hop distance. Traversal of
// a branch stops when visit returns false for its node.
func (g *Graph) BFS(start NodeID, visit func(id NodeID, depth int) bool) {
	if !g.valid(start) {
		return
	}
	seen := make([]bool, len(g.nodes))
	type item struct {
		id    NodeID
		depth int
	}
	queue := []item{{start, 0}}
	seen[start] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if !visit(cur.id, cur.depth) {
			continue
		}
		for _, e := range g.out[cur.id] {
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, item{e.To, cur.depth + 1})
			}
		}
	}
}

// DFS visits nodes in depth-first (preorder) order from start. Traversal of
// a branch stops when visit returns false.
func (g *Graph) DFS(start NodeID, visit func(id NodeID) bool) {
	if !g.valid(start) {
		return
	}
	seen := make([]bool, len(g.nodes))
	stack := []NodeID{start}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		seen[id] = true
		if !visit(id) {
			continue
		}
		out := g.out[id]
		for i := len(out) - 1; i >= 0; i-- {
			if !seen[out[i].To] {
				stack = append(stack, out[i].To)
			}
		}
	}
}

// WithinHops returns all nodes reachable from start in at most maxHops
// steps (excluding start itself), with their hop distance.
func (g *Graph) WithinHops(start NodeID, maxHops int) map[NodeID]int {
	res := make(map[NodeID]int)
	g.BFS(start, func(id NodeID, depth int) bool {
		if depth > maxHops {
			return false
		}
		if id != start {
			res[id] = depth
		}
		return depth < maxHops
	})
	return res
}

// Components returns the weakly connected components of the graph as a
// slice of node-ID sets, largest first, treating every edge as undirected.
func (g *Graph) Components() [][]NodeID {
	n := len(g.nodes)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]NodeID
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		c := len(comps)
		var members []NodeID
		stack := []NodeID{NodeID(s)}
		comp[s] = c
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, id)
			for _, e := range g.out[id] {
				if comp[e.To] < 0 {
					comp[e.To] = c
					stack = append(stack, e.To)
				}
			}
			for _, e := range g.in[id] {
				if comp[e.From] < 0 {
					comp[e.From] = c
					stack = append(stack, e.From)
				}
			}
		}
		comps = append(comps, members)
	}
	// Largest first, deterministic within size by first member.
	for i := range comps {
		sortNodeIDs(comps[i])
	}
	sortComponents(comps)
	return comps
}

func sortNodeIDs(ids []NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

func sortComponents(comps [][]NodeID) {
	for i := 1; i < len(comps); i++ {
		for j := i; j > 0 && less(comps[j], comps[j-1]); j-- {
			comps[j], comps[j-1] = comps[j-1], comps[j]
		}
	}
}

func less(a, b []NodeID) bool {
	if len(a) != len(b) {
		return len(a) > len(b)
	}
	if len(a) == 0 {
		return false
	}
	return a[0] < b[0]
}
