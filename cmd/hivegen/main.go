// Command hivegen generates a synthetic conference workload and either
// prints summary statistics or writes it into a Hive data directory.
//
// Usage:
//
//	hivegen [-users 60] [-seed 42] [-out DIR]
package main

import (
	"flag"
	"fmt"
	"log"

	"hive/internal/social"
	"hive/internal/workload"
)

func main() {
	users := flag.Int("users", 60, "number of researchers")
	seed := flag.Int64("seed", 42, "random seed")
	out := flag.String("out", "", "write the dataset into this Hive data directory")
	flag.Parse()

	ds := workload.Generate(workload.Config{Seed: *seed, Users: *users})
	fmt.Printf("generated: %d users, %d conferences, %d sessions, %d papers, %d presentations\n",
		len(ds.Users), len(ds.Conferences), len(ds.Sessions), len(ds.Papers), len(ds.Presentations))
	fmt.Printf("interactions: %d connections, %d follows, %d checkins, %d questions, %d answers\n",
		len(ds.Connections), len(ds.Follows), len(ds.CheckIns), len(ds.Questions), len(ds.Answers))

	if *out == "" {
		return
	}
	st, err := social.Open(*out, nil)
	if err != nil {
		log.Fatalf("open store: %v", err)
	}
	defer st.Close()
	if err := ds.Load(st); err != nil {
		log.Fatalf("load: %v", err)
	}
	fmt.Printf("written to %s\n", *out)
}
