package api

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestCursorRoundTrip(t *testing.T) {
	for _, off := range []int{0, 1, 49, 1_000_000} {
		c := EncodeCursor(off)
		got, err := DecodeCursor(c)
		if err != nil {
			t.Fatalf("DecodeCursor(%q): %v", c, err)
		}
		if got != off {
			t.Fatalf("round-trip %d -> %d", off, got)
		}
	}
	if off, err := DecodeCursor(""); err != nil || off != 0 {
		t.Fatalf("empty cursor = (%d, %v), want (0, nil)", off, err)
	}
}

func TestCursorRejectsGarbage(t *testing.T) {
	for _, c := range []string{
		"not base64 !!",
		"bm9wZQ", // "nope": no version prefix
		EncodeCursor(5) + "x",
		"djE6LTM",                         // "v1:-3": negative
		EncodeCursor(MaxCursorOffset + 1), // overflow bait: offset+limit must never wrap
	} {
		if _, err := DecodeCursor(c); !errors.Is(err, ErrBadCursor) {
			t.Fatalf("DecodeCursor(%q) err = %v, want ErrBadCursor", c, err)
		}
	}
	if off, err := DecodeCursor(EncodeCursor(MaxCursorOffset)); err != nil || off != MaxCursorOffset {
		t.Fatalf("max offset round-trip = (%d, %v)", off, err)
	}
}

func TestPaginate(t *testing.T) {
	items := []int{0, 1, 2, 3, 4}
	p := Paginate(items, 0, 2)
	if len(p.Items) != 2 || p.Items[0] != 0 || p.NextCursor == "" || p.Limit != 2 {
		t.Fatalf("first page = %+v", p)
	}
	off, err := DecodeCursor(p.NextCursor)
	if err != nil || off != 2 {
		t.Fatalf("next offset = (%d, %v)", off, err)
	}
	p = Paginate(items, 4, 2)
	if len(p.Items) != 1 || p.Items[0] != 4 || p.NextCursor != "" {
		t.Fatalf("last page = %+v", p)
	}
	// Past the end and negative offsets are clamped, not errors.
	if p = Paginate(items, 99, 2); len(p.Items) != 0 || p.NextCursor != "" {
		t.Fatalf("past-end page = %+v", p)
	}
	if p = Paginate(items, -3, 2); len(p.Items) != 2 || p.Items[0] != 0 {
		t.Fatalf("negative-offset page = %+v", p)
	}
	// Items must serialize as [], not null.
	raw, _ := json.Marshal(Paginate([]int(nil), 0, 2))
	if !strings.Contains(string(raw), `"items":[]`) {
		t.Fatalf("empty page JSON = %s", raw)
	}
}

func TestClampLimit(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultPageSize}, {-7, DefaultPageSize}, {1, 1},
		{MaxPageSize, MaxPageSize}, {MaxPageSize + 1, MaxPageSize}, {1 << 30, MaxPageSize},
	} {
		if got := ClampLimit(tc.in); got != tc.want {
			t.Fatalf("ClampLimit(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestErrorEnvelopeShape(t *testing.T) {
	raw, err := json.Marshal(ErrorResponse{Error: &Error{Code: CodeNotFound, Message: "user \"x\""}})
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Error.Code != CodeNotFound || decoded.Error.Message == "" {
		t.Fatalf("envelope = %s", raw)
	}
	var e error = &Error{Code: CodeInvalidArgument, Message: "bad"}
	if !IsCode(e, CodeInvalidArgument) || IsCode(e, CodeNotFound) {
		t.Fatalf("IsCode misclassified %v", e)
	}
}

func TestBatchEntityRoundTrip(t *testing.T) {
	ent, err := NewBatchEntity(KindUser, User{ID: "u1", Name: "One"})
	if err != nil {
		t.Fatal(err)
	}
	var u User
	if err := json.Unmarshal(ent.Data, &u); err != nil {
		t.Fatal(err)
	}
	if ent.Kind != KindUser || u.ID != "u1" {
		t.Fatalf("entity = %+v user = %+v", ent, u)
	}
}
