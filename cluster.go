package hive

// Elected-cluster mode: the election layer (internal/election) decides
// which node leads; this file turns its outcomes into live role
// transitions on a running platform.
//
// Safety comes from epoch fencing, not from the lease: every journaled
// batch carries the leadership term it was written under, a follower
// rejects batches behind its adopted term (a deposed leader's writes
// are fenced, never silently applied), and a node refuses to bootstrap
// from a snapshot behind its term. The lease only decides *liveness* —
// who should be accepting writes right now — so a transiently
// split-brained lease costs availability at worst, never divergence.
//
// Transitions run on a dedicated goroutine fed by a latest-wins
// channel: elector callbacks must return promptly (a blocked callback
// would stall lease renewal), while a transition may run a full rebuild
// or a snapshot re-bootstrap.

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"hive/internal/election"
)

// ClusterConfig wires a platform into an elected replica set: the
// election decides which member leads and everyone else tails it.
type ClusterConfig struct {
	// SelfURL is this node's advertised base URL: what the lease names
	// as holder, what peers tail, and what rejected writers are
	// redirected to when this node leads.
	SelfURL string
	// Peers lists the other members' base URLs. They are not dialed for
	// election (the Election backend owns that); they feed the cluster
	// status endpoint and client-side leader re-resolution.
	Peers []string
	// Election decides the leader. Use election.NewFileLease for the
	// shared-directory backend, or any other Elector implementation.
	Election election.Elector

	// QuorumWrites opts into synchronous durability: when leading, every
	// write response is held until this many followers have confirmed
	// the write applied at the current epoch (acks piggyback on the
	// replication long-poll). 0 keeps the async default — the write is
	// acknowledged once journaled locally. A write that cannot collect
	// its quorum within AckTimeout fails with *QuorumUnavailableError
	// (HTTP: 503 quorum_unavailable); the data stays journaled and
	// replicates when followers return.
	QuorumWrites int
	// AckTimeout bounds how long a quorum write waits for follower acks
	// (0 = DefaultAckTimeout). Degradation under it is typed, never a
	// hang: the handler timeout middleware must stay above it or the
	// envelope turns into a blunt timeout.
	AckTimeout time.Duration
	// ReplicationTransport, when set, replaces the HTTP transport of the
	// follower's replication client. It exists as the fault-injection
	// seam (internal/faultnet) for tests; nil uses the default transport.
	ReplicationTransport http.RoundTripper
}

// Platform roles. The zero value is neither, so a role read before Open
// finished assigning one fails the writable check closed (writes need
// an explicit leader grant).
const (
	roleLeader int32 = iota + 1
	roleFollower
)

// startCluster validates the config, joins as a write-fenced follower
// and starts the elector; the first election outcome assigns the real
// role. Called from Open.
func (p *Platform) startCluster(cfg ClusterConfig) error {
	if cfg.SelfURL == "" {
		return errors.New("hive: ClusterConfig.SelfURL is required")
	}
	if cfg.Election == nil {
		return errors.New("hive: ClusterConfig.Election is required")
	}
	if !p.store.Journaled() {
		return errors.New("hive: cluster mode requires a durable store (Options.Dir): an elected node must be able to lead, and an in-memory node has no journal for followers to tail")
	}
	if cfg.QuorumWrites < 0 {
		return errors.New("hive: ClusterConfig.QuorumWrites must be >= 0")
	}
	if cfg.QuorumWrites > len(cfg.Peers) {
		return fmt.Errorf("hive: ClusterConfig.QuorumWrites %d exceeds the %d configured peers — no write could ever commit", cfg.QuorumWrites, len(cfg.Peers))
	}
	p.selfURL = cfg.SelfURL
	p.peers = append([]string(nil), cfg.Peers...)
	p.elector = cfg.Election
	p.quorumK = cfg.QuorumWrites
	p.ackTimeout = cfg.AckTimeout
	if p.ackTimeout <= 0 {
		p.ackTimeout = DefaultAckTimeout
	}
	p.replTransport = cfg.ReplicationTransport
	p.acks = map[string]followerAck{}
	p.ackCh = make(chan struct{})
	p.role.Store(roleFollower) // fenced until elected
	p.transCh = make(chan election.State, 1)
	p.transStop = make(chan struct{})
	p.transDone = make(chan struct{})
	go p.transitionLoop()
	// The recovered epoch floors the election: any term this node claims
	// outranks every batch its journal ever held.
	p.elector.Start(p.store.Epoch(), p.onElection)
	return nil
}

// stopCluster stops the elector and drains the transition loop. After
// it returns no transition is in flight, so Close can tear the rest
// down safely. No-op outside cluster mode.
func (p *Platform) stopCluster() {
	if p.elector == nil {
		return
	}
	p.elector.Stop()
	select {
	case <-p.transStop:
		// already stopped
	default:
		close(p.transStop)
	}
	<-p.transDone
}

// onElection is the elector's notify hook. It must not block: role
// transitions can run rebuilds and re-bootstraps, so outcomes go
// through a one-slot latest-wins channel — a burst of flapping
// outcomes collapses to the newest, which is the only one that matters.
func (p *Platform) onElection(st election.State) {
	for {
		select {
		case p.transCh <- st:
			return
		case <-p.transCh:
			// Displace the stale queued outcome and retry.
		}
	}
}

// transitionLoop applies election outcomes one at a time.
func (p *Platform) transitionLoop() {
	defer close(p.transDone)
	for {
		select {
		case <-p.transStop:
			return
		case st := <-p.transCh:
			p.applyElection(st)
		}
	}
}

// applyElection turns one election outcome into a role transition.
//
// Promotions are epoch-gated: a promotion at a term below the store's
// is stale news from a contested election round and is ignored —
// accepting it would journal new writes under an already-fenced term.
// Demotions always apply: stepping down is always safe, and refusing to
// would keep accepting writes nobody replicates.
func (p *Platform) applyElection(st election.State) {
	if st.Role == election.Leader {
		p.promote(st.Epoch)
		return
	}
	p.demoteTo(st.Epoch, st.Leader)
}

// promote transitions this node to leader at the given term: stop
// tailing, adopt the term, fold the local journal tail into the serving
// snapshot, then open the write path. The store already holds every
// batch the old leader shipped us (ApplyReplica journals before it
// acknowledges), so "replay the journal tail" means draining the queued
// change events — or a full build when no snapshot serves yet — not
// re-reading the journal.
func (p *Platform) promote(epoch uint64) {
	if epoch < p.store.Epoch() {
		return // stale promotion from a lost election round
	}
	if p.role.Load() == roleLeader {
		// Renewal at the same or a later term.
		p.store.SetEpoch(epoch)
		p.setLeaderHint(p.selfURL)
		return
	}
	// Caught-up gate: before a fresh promotion opens the write path,
	// compare histories with every reachable peer. A peer holding
	// sequences beyond ours at this term would lose its surplus if we
	// led — and if any of that surplus was quorum-acknowledged, losing
	// it breaks the durability promise quorum writes made. Defer to it:
	// yield the lease and stay fenced, for at most maxPromotionDeferrals
	// consecutive rounds (an unclaiming peer must not leave the cluster
	// leaderless).
	if p.deferStreak < maxPromotionDeferrals {
		if _, _, found := p.moreCaughtUpPeer(); found {
			p.deferPromotion()
			return
		}
	}
	p.deferStreak = 0
	// A new term's quorum must be proven by new acks; stale bookkeeping
	// from an earlier stint as leader must not vouch for it.
	p.resetAcks()
	// Order matters: the tail loop must be fully stopped before the
	// term changes hands, so no replicated batch races the promotion.
	p.stopFollowing()
	p.store.SetEpoch(epoch)
	if err := p.ApplyDeltas(); err != nil {
		// The store is still authoritative and lastErr carries the
		// failure to healthz; leadership proceeds — refusing it would
		// leave the cluster leaderless over a snapshot build hiccup.
		_ = err
	}
	p.setLeaderHint(p.selfURL)
	p.role.Store(roleLeader)
	p.promotions.Add(1)
	mPromotions.Inc()
}

// demoteTo transitions this node to follower of leaderURL at the given
// term. The write fence drops first — before any slow re-bootstrap —
// so a deposed leader stops journaling doomed batches immediately.
func (p *Platform) demoteTo(epoch uint64, leaderURL string) {
	wasLeader := p.role.Load() == roleLeader
	p.role.Store(roleFollower)
	if wasLeader {
		p.demotions.Add(1)
		mDemotions.Inc()
		// Quorum waiters parked on our deposed term must not hang until
		// their deadline on a channel no ack will ever close again.
		p.resetAcks()
	}
	if leaderURL != "" && leaderURL != p.selfURL {
		// Another node actually leads: the deferrals worked (or the race
		// resolved itself), so the next lost-leader round starts with a
		// fresh deferral budget. The no-leader interludes *between* our
		// own yielded claims keep the streak, or the cap could never bind.
		p.deferStreak = 0
	}
	epochAdvanced := epoch > p.store.Epoch()
	p.store.SetEpoch(epoch)
	p.setLeaderHint(leaderURL)

	cur := p.followP.Load()
	switch {
	case leaderURL == "" || leaderURL == p.selfURL:
		// No (other) leader known — an unresolved election round. Stop
		// tailing whoever we tailed and wait, fenced, for the next
		// outcome.
		p.stopFollowing()
	case cur != nil && cur.url == leaderURL && !epochAdvanced && !wasLeader:
		// Already tailing the right leader at the right term.
	default:
		// New leader, new term, or we just stepped down. A deposed
		// leader may hold journaled batches the new term never saw
		// (fenced on every peer), so rejoining always re-bootstraps
		// from the new leader's snapshot; a plain leader change at the
		// same term re-bootstraps too — cheap, and it sidesteps every
		// cross-leader tail-alignment edge case.
		p.stopFollowing()
		p.startFollowerAsync(leaderURL)
	}
}

// setLeaderHint records the leader URL handed to rejected writers and
// the cluster status endpoint.
func (p *Platform) setLeaderHint(url string) { p.leaderP.Store(&url) }

// leaderHint returns the current leader URL ("" while unknown).
func (p *Platform) leaderHint() string {
	if s := p.leaderP.Load(); s != nil {
		return *s
	}
	return ""
}

// --- Cluster observability ------------------------------------------------------

// Role reports the node's current replication role.
func (p *Platform) Role() string {
	if p.role.Load() == roleFollower {
		return "follower"
	}
	return "leader"
}

// Epoch returns the leadership term the node has adopted (0 only on
// unmanaged in-memory standalone platforms).
func (p *Platform) Epoch() uint64 { return p.store.Epoch() }

// ClusterSelf returns this node's advertised URL ("" outside cluster
// mode).
func (p *Platform) ClusterSelf() string { return p.selfURL }

// ClusterPeers returns the configured peer URLs (nil outside cluster
// mode).
func (p *Platform) ClusterPeers() []string { return append([]string(nil), p.peers...) }

// Promotions counts follower→leader transitions since Open.
func (p *Platform) Promotions() uint64 { return p.promotions.Load() }

// Demotions counts leader→follower transitions since Open.
func (p *Platform) Demotions() uint64 { return p.demotions.Load() }

// ElectionState returns the elector's latest outcome (zero outside
// cluster mode). The platform's Role may briefly trail it while a
// transition is applied.
func (p *Platform) ElectionState() election.State {
	if p.elector == nil {
		return election.State{}
	}
	return p.elector.State()
}

// StaleEpochError rejects a replication request asserting a newer term
// than this node has adopted: the requester is fenced off from a stale
// node and must re-resolve the leader. The HTTP layer maps it to the
// stale_epoch error code.
type StaleEpochError struct {
	// Requested is the term the caller asserted; Current is this
	// node's term.
	Requested, Current uint64
}

func (e *StaleEpochError) Error() string {
	return fmt.Sprintf("hive: node is at epoch %d, behind requested epoch %d; re-resolve the leader", e.Current, e.Requested)
}
