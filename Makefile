# Local dev and CI run the exact same commands: CI jobs call these
# targets, so a green `make ci` locally means a green pipeline.

GO      ?= go
BENCHTIME ?= 200ms
# Benchmark JSON stream for the current PR's perf record (uploaded as a
# CI artifact so the trajectory accumulates across commits).
BENCH_OUT ?= BENCH_pr10.json

.PHONY: build test race bench bench-ci fmt vet lint vuln race-nightly ci api-smoke repl-smoke failover-smoke quorum-smoke shard-smoke metrics-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# Short benchmark pass for CI: one data point per benchmark, JSON
# stream captured as $(BENCH_OUT) so the perf trajectory accumulates.
# Includes the frozen-vs-live micro-benchmarks (SearchVector,
# TFIDFVector, RecommendPeers, RecommendResources), the PR-4
# delta-vs-rebuild pair, the PR-5 journal append/replay micro-benches,
# the PR-8 quorum-write benchmark, the PR-9 sharded write /
# scatter-gather pair, and the PR-10 instrumented-search overhead
# guard (BenchmarkInstrumentedSearch) — see EXPERIMENTS.md.
bench-ci:
	$(GO) test -json -bench=. -benchtime=$(BENCHTIME) -run='^$$' . ./internal/journal | tee $(BENCH_OUT)

# Static analysis beyond vet: CI installs govulncheck on the runner;
# locally this degrades to a warning when the tool is absent.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "govulncheck not installed; skipping (CI runs it)"; fi

# Nightly-strength race pass: the delta interleaving property tests, the
# leader/follower convergence test, the election failover/fencing tests,
# and the fault-injected quorum no-lost-writes test at a higher -count,
# catching rare schedules the per-PR run might miss.
race-nightly:
	$(GO) test -race -run 'TestDeltaInterleavingParity|TestDeltaNeverObservesTornBatch|TestSegmentedParity' -count=5 ./internal/core/ ./internal/textindex/
	$(GO) test -race -run 'TestLeaderFollowerConvergence' -count=5 ./internal/server/
	$(GO) test -race -run 'TestClusterFailoverConvergence|TestDeposedLeaderFencing' -count=2 ./internal/server/
	$(GO) test -race -run 'TestQuorumNoLostWrites' -count=2 ./internal/server/

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# The project's own invariant suite (cmd/hivelint: snapshotcheck,
# epochcheck, hookcheck, apierrcheck — see CONTRIBUTING.md) plus go
# vet, plus staticcheck when the runner has it (CI installs a pinned
# version; locally this degrades to a warning, same as vuln).
lint:
	$(GO) run ./cmd/hivelint ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (CI runs it)"; fi

# End-to-end API contract check: build a real hived, boot it, and drive
# the entire /api/v1 surface through the client SDK (cmd/apismoke).
api-smoke:
	$(GO) build -o bin/hived ./cmd/hived
	$(GO) run ./cmd/apismoke -hived bin/hived

# Two-node replication check: boot a two-member elected cluster
# (leader node first, so the election is deterministic), seed the
# leader over the batch API, read from the follower until converged
# (< 1s propagation bound), and assert the not_leader envelope on
# follower writes.
repl-smoke:
	$(GO) build -o bin/hived ./cmd/hived
	$(GO) run ./cmd/apismoke -hived bin/hived -repl

# Three-node election failover check: boot an elected cluster, put the
# cluster-aware SDK under write load, SIGKILL the leader and assert a
# follower promotes at a higher epoch, the SDK's next write lands
# without re-targeting, and the resurrected old leader's stale-epoch
# state is fenced everywhere.
failover-smoke:
	$(GO) build -o bin/hived ./cmd/hived
	$(GO) run ./cmd/apismoke -hived bin/hived -failover

# Quorum durability check: boot a three-node cluster with -quorum 1,
# assert acknowledged writes advance the cluster commit index, killing
# every follower degrades writes to a typed quorum_unavailable inside
# the ack timeout, a follower restart restores acks, and the commit
# index never regresses across a leader kill.
quorum-smoke:
	$(GO) build -o bin/hived ./cmd/hived
	$(GO) run ./cmd/apismoke -hived bin/hived -quorum

# Sharded write-path check: boot one hived partitioned into four shards
# over a durable data dir, assert the shard map on healthz/cluster,
# owner-routed writes with cross-shard scatter-gather reads, the
# wrong_shard envelope on a mis-declared X-Hive-Shard, the manifest
# refusing a changed shard count, and same-count restart recovery.
shard-smoke:
	$(GO) build -o bin/hived ./cmd/hived
	$(GO) run ./cmd/apismoke -hived bin/hived -sharded

# Observability check: assert over GET /metrics that request counters,
# the scatter-gather fan-out histogram and per-shard gauges advance as
# the SDK drives a routed write, a cross-shard search and a wrong_shard
# 409 — and that one SDK-minted trace ID survives a not_leader redirect,
# recorded on both the rejecting follower and the serving leader.
metrics-smoke:
	$(GO) build -o bin/hived ./cmd/hived
	$(GO) run ./cmd/apismoke -hived bin/hived -metrics

# lint subsumes vet (hivelint runs `go vet` over the same patterns).
ci: build lint fmt race
