// Package hookcheck enforces the change-event discipline around
// social.Store from PR 4/5: every exported mutator that writes the
// backing kv store must fire the OnChange pipeline (emit/deliver, or a
// scoped wrapper that does), because the serving snapshot is maintained
// incrementally from those events — a silent write leaves the engine
// stale until the next compaction. It also enforces the lock order
// around delivery: subscriber callbacks, journal appends and HTTP
// calls must not run while a Store mutex is held (subscribers fold
// deltas synchronously and may take arbitrary time; the journal and
// network do I/O).
package hookcheck

import (
	"go/ast"
	"go/types"

	"hive/internal/analysis"
)

// kvWriteOps are the mutating methods of the kv field; calling one
// directly makes a Store method a mutator.
var kvWriteOps = map[string]bool{
	"Put": true, "Delete": true, "Apply": true, "ApplyQuiet": true, "ImportSnapshot": true,
}

// emitters are the Store methods that feed the OnChange pipeline.
var emitters = map[string]bool{"emit": true, "deliver": true, "scoped": true}

var Analyzer = &analysis.Analyzer{
	Name: "hookcheck",
	Doc: "flag social.Store mutators that write the kv store without firing OnChange, " +
		"and deliver/journal/HTTP calls made while holding a Store mutex",
	Run: run,
}

func run(pass *analysis.Pass) error {
	emitting := emittingMethods(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMutatorEmits(pass, fd)
			checkSingleBatch(pass, fd, emitting)
		}
		// Every function literal is its own lock scope: a closure may
		// run on another goroutine, so held locks don't flow into it —
		// and locks it takes are tracked independently.
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					scanLocks(pass, fn.Body.List, map[string]bool{})
				}
			case *ast.FuncLit:
				scanLocks(pass, fn.Body.List, map[string]bool{})
			}
			return true
		})
	}
	return nil
}

// --- Rule A: mutators must emit ----------------------------------------------

// checkMutatorEmits flags exported social.Store methods that call a kv
// write operation but never touch the OnChange pipeline.
func checkMutatorEmits(pass *analysis.Pass, fd *ast.FuncDecl) {
	recv := analysis.ReceiverNamed(pass.TypesInfo, fd.Recv)
	if recv == nil || recv.Obj().Name() != "Store" ||
		!analysis.PkgPathHasSuffix(recv.Obj().Pkg(), "internal/social") {
		return
	}
	if !fd.Name.IsExported() {
		return
	}
	writes, emits := false, false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch {
		case kvWriteOps[sel.Sel.Name] && isStoreKVField(pass, sel.X):
			writes = true
		case sel.Sel.Name == "putJSON" && isStore(pass, sel.X):
			writes = true
		case emitters[sel.Sel.Name] && isStore(pass, sel.X):
			emits = true
		}
		return true
	})
	if writes && !emits {
		pass.Reportf(fd.Name.Pos(),
			"Store mutator %s writes the kv store without firing OnChange (snapshot maintenance depends on change events)",
			fd.Name.Name)
	}
}

// emittingMethods collects the Store methods of this package that call
// emit directly — each such call delivers one change batch (unless a
// scoped wrapper coalesces them).
func emittingMethods(pass *analysis.Pass) map[string]bool {
	out := map[string]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			recv := analysis.ReceiverNamed(pass.TypesInfo, fd.Recv)
			if recv == nil || recv.Obj().Name() != "Store" ||
				!analysis.PkgPathHasSuffix(recv.Obj().Pkg(), "internal/social") {
				continue
			}
			found := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
						sel.Sel.Name == "emit" && isStore(pass, sel.X) {
						found = true
					}
				}
				return !found
			})
			if found {
				out[fd.Name.Name] = true
			}
		}
	}
	return out
}

// checkSingleBatch enforces the one-coalesced-batch contract: an
// exported Store method whose body fires emit more than once — its own
// emit plus nested emitting mutators, or two nested mutators — must
// wrap the calls in scoped/Batched, otherwise subscribers observe the
// logical mutation as several deliveries with inconsistent
// intermediate states.
func checkSingleBatch(pass *analysis.Pass, fd *ast.FuncDecl, emitting map[string]bool) {
	recv := analysis.ReceiverNamed(pass.TypesInfo, fd.Recv)
	if recv == nil || recv.Obj().Name() != "Store" ||
		!analysis.PkgPathHasSuffix(recv.Obj().Pkg(), "internal/social") {
		return
	}
	if !fd.Name.IsExported() {
		return
	}
	batches := 0
	scoped := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !isStore(pass, sel.X) {
			return true
		}
		switch {
		case sel.Sel.Name == "scoped" || sel.Sel.Name == "Batched":
			scoped = true
		case sel.Sel.Name == "emit" || emitting[sel.Sel.Name]:
			batches++
		}
		return true
	})
	if batches >= 2 && !scoped {
		pass.Reportf(fd.Name.Pos(),
			"Store mutator %s fires %d change batches: wrap the writes in scoped/Batched so subscribers get one coalesced batch",
			fd.Name.Name, batches)
	}
}

// isStoreKVField reports whether expr is the kv field of a
// social.Store value (s.kv in the real package, or any Store field
// named kv in a stub).
func isStoreKVField(pass *analysis.Pass, expr ast.Expr) bool {
	sel, ok := expr.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "kv" && isStore(pass, sel.X)
}

func isStore(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	return ok && analysis.IsNamed(tv.Type, "internal/social", "Store")
}

// --- Rule B: no delivery/journal/HTTP under a Store mutex --------------------

// scanLocks walks a statement list in source order, tracking which
// social.Store mutex fields are held. Branch bodies scan against a
// copy of the held set, so an early-unlock-and-return branch doesn't
// clear the lock for the fallthrough path. Deferred unlocks
// deliberately don't release (the lock is held for the rest of the
// function), and deferred risky calls aren't flagged (they run at
// return, typically after a deferred unlock).
func scanLocks(pass *analysis.Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		if name, op, ok := storeLockOp(pass, stmt); ok {
			switch op {
			case "Lock", "RLock":
				held[name] = true
			case "Unlock", "RUnlock":
				delete(held, name)
			}
			continue
		}
		switch st := stmt.(type) {
		case *ast.BlockStmt:
			scanLocks(pass, st.List, held)
		case *ast.IfStmt:
			reportRisky(pass, held, st.Init, st.Cond)
			scanLocks(pass, st.Body.List, copyHeld(held))
			if st.Else != nil {
				scanLocks(pass, []ast.Stmt{st.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			reportRisky(pass, held, st.Init, st.Cond, st.Post)
			scanLocks(pass, st.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			reportRisky(pass, held, st.X)
			scanLocks(pass, st.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			reportRisky(pass, held, st.Init, st.Tag)
			scanCases(pass, st.Body, held)
		case *ast.TypeSwitchStmt:
			scanCases(pass, st.Body, held)
		case *ast.SelectStmt:
			scanCases(pass, st.Body, held)
		case *ast.DeferStmt, *ast.GoStmt:
			// A deferred call runs at return (typically after the
			// deferred unlock); a go'd call runs on its own goroutine
			// without the lock. Neither is flagged.
		default:
			reportRisky(pass, held, stmt)
		}
	}
}

func scanCases(pass *analysis.Pass, body *ast.BlockStmt, held map[string]bool) {
	for _, cs := range body.List {
		switch c := cs.(type) {
		case *ast.CaseClause:
			scanLocks(pass, c.Body, copyHeld(held))
		case *ast.CommClause:
			scanLocks(pass, c.Body, copyHeld(held))
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// storeLockOp matches a bare `s.<mu>.Lock()` style statement where s
// is a social.Store and <mu> is a sync.Mutex/RWMutex field, returning
// the field name and operation.
func storeLockOp(pass *analysis.Pass, stmt ast.Stmt) (field, op string, ok bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", "", false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return "", "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	mu, ok := sel.X.(*ast.SelectorExpr)
	if !ok || !isStore(pass, mu.X) {
		return "", "", false
	}
	if !analysis.IsNamed(typeOf(pass, mu), "sync", "Mutex") &&
		!analysis.IsNamed(typeOf(pass, mu), "sync", "RWMutex") {
		return "", "", false
	}
	return mu.Sel.Name, sel.Sel.Name, true
}

// reportRisky inspects the given nodes (without descending into
// function literals — separate lock scopes) for calls that must not
// run under a Store mutex.
func reportRisky(pass *analysis.Pass, held map[string]bool, nodes ...ast.Node) {
	if len(held) == 0 {
		return
	}
	lock := ""
	for name := range held {
		if lock == "" || name < lock {
			lock = name
		}
	}
	for _, node := range nodes {
		// Optional statement/expression slots (IfStmt.Init, ForStmt.Post,
		// ...) arrive as nil interface values.
		if node == nil {
			continue
		}
		ast.Inspect(node, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if why := riskyCall(pass, call); why != "" {
				pass.Reportf(call.Pos(),
					"%s while holding social.Store.%s: delivery, journal appends and HTTP must not run under a store mutex",
					why, lock)
			}
			return true
		})
	}
}

// riskyCall classifies calls that do unbounded work: subscriber
// delivery, journal appends, anything in net/http.
func riskyCall(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if sel.Sel.Name == "deliver" && isStore(pass, sel.X) {
		return "subscriber delivery (deliver)"
	}
	if sel.Sel.Name == "Append" {
		if n := analysis.Deref(typeOf(pass, sel.X)); n != nil &&
			analysis.PkgPathHasSuffix(n.Obj().Pkg(), "internal/journal") {
			return "journal append"
		}
	}
	if obj, ok := pass.TypesInfo.Uses[sel.Sel]; ok && obj.Pkg() != nil && obj.Pkg().Path() == "net/http" {
		return "HTTP call (net/http." + sel.Sel.Name + ")"
	}
	return ""
}

func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}
