// Package textindex is a stub mirroring the real package's path
// suffix and snapshot types; writes are only legal on the
// Freeze/NewSegmented/WithDocs/WithoutDocs construction paths.
package textindex

type Frozen struct {
	Meta map[string]string
	ids  []string
	text map[string]string
}

type Segmented struct {
	base  *Frozen
	over  map[string]string
	nDocs int
}

func Freeze(docs map[string]string) *Frozen {
	f := &Frozen{text: map[string]string{}, Meta: map[string]string{}}
	for id, t := range docs {
		f.ids = append(f.ids, id) // construction: allowed
		f.text[id] = t            // construction: allowed
	}
	pad(f)
	return f
}

// pad is reachable from Freeze, so its writes are construction too.
func pad(f *Frozen) {
	f.Meta["built"] = "true" // allowed via reachability
}

func NewSegmented(base *Frozen) *Segmented {
	s := &Segmented{base: base, over: map[string]string{}}
	s.nDocs = len(base.ids) // construction: allowed
	return s
}

func (s *Segmented) WithDocs(docs map[string]string) *Segmented {
	ns := s.clone()
	for id, t := range docs {
		ns.over[id] = t // construction: allowed
		ns.nDocs++      // construction: allowed
	}
	return ns
}

// clone is reachable from WithDocs.
func (s *Segmented) clone() *Segmented {
	ns := &Segmented{base: s.base, over: map[string]string{}, nDocs: s.nDocs}
	for k, v := range s.over {
		ns.over[k] = v // allowed via reachability
	}
	return ns
}

// Poke mutates a published Frozen outside the construction graph.
func Poke(f *Frozen) {
	f.ids = nil // want `outside the construction whitelist`
}

// Tweak mutates a published Segmented outside the construction graph.
func Tweak(s *Segmented) {
	s.nDocs++ // want `outside the construction whitelist`
	//lint:allow snapshotcheck seeded exception proving suppression works
	s.over["x"] = "y"
}
