package core

import (
	"fmt"
	"sort"

	"hive/internal/biblio"
	"hive/internal/graph"
	"hive/internal/textindex"
)

// EvidenceKind enumerates the relationship evidence classes of paper §2.
type EvidenceKind string

// The nine evidence classes Hive uses "for discovering and explaining
// relationships between individuals".
const (
	EvProfile     EvidenceKind = "profile-interests"
	EvAffiliation EvidenceKind = "affiliation-groups"
	EvCoauthor    EvidenceKind = "coauthorship"
	EvCitation    EvidenceKind = "citation"
	EvFollow      EvidenceKind = "following"
	EvConference  EvidenceKind = "conference-participation"
	EvSession     EvidenceKind = "session-participation"
	EvQA          EvidenceKind = "question-comment-answer"
	EvContent     EvidenceKind = "content-similarity"
	EvActivity    EvidenceKind = "activity-similarity"
)

// Evidence is one discovered relationship evidence with a human-readable
// explanation (the right column of Figure 2).
type Evidence struct {
	Kind        EvidenceKind
	Strength    float64 // in [0, 1]
	Description string
}

// Explanation is the full relationship picture between two users.
type Explanation struct {
	A, B      string
	Evidences []Evidence
	// Score fuses the evidence strengths (weighted sum normalized to
	// [0, 1]).
	Score float64
	// Paths are the best connecting paths in the integrated peer
	// network, as user-ID sequences (up to 3).
	Paths [][]string
}

// evidenceWeights is the fusion weight per evidence class. Direct
// scholarly ties dominate; ambient similarities contribute less. The
// ablation bench (E2) compares this weighted fusion against max-fusion.
var evidenceWeights = map[EvidenceKind]float64{
	EvCoauthor:    1.0,
	EvCitation:    0.9,
	EvQA:          0.8,
	EvConference:  0.4,
	EvSession:     0.6,
	EvFollow:      0.7,
	EvProfile:     0.5,
	EvAffiliation: 0.4,
	EvContent:     0.6,
	EvActivity:    0.5,
}

// Explain discovers and explains the relationship between two users
// (Figure 2: "relationships between the users ... are shown on the right
// column").
func (e *Engine) Explain(a, b string) (Explanation, error) {
	ua, err := e.store.User(a)
	if err != nil {
		return Explanation{}, fmt.Errorf("%w: %s", ErrUnknownUser, a)
	}
	ub, err := e.store.User(b)
	if err != nil {
		return Explanation{}, fmt.Errorf("%w: %s", ErrUnknownUser, b)
	}

	var evs []Evidence
	add := func(kind EvidenceKind, strength float64, desc string) {
		if strength > 1 {
			strength = 1
		}
		if strength > 0 {
			evs = append(evs, Evidence{Kind: kind, Strength: strength, Description: desc})
		}
	}

	// Profile and declared interests.
	shared := intersect(ua.Interests, ub.Interests)
	if len(shared) > 0 {
		add(EvProfile, float64(len(shared))/float64(maxLen(ua.Interests, ub.Interests)),
			fmt.Sprintf("shared interests: %v", shared))
	}
	// Affiliation and groups.
	if ua.Affiliation != "" && ua.Affiliation == ub.Affiliation {
		add(EvAffiliation, 1, "same affiliation: "+ua.Affiliation)
	} else if g := intersect(ua.Groups, ub.Groups); len(g) > 0 {
		add(EvAffiliation, 0.5, fmt.Sprintf("shared groups: %v", g))
	}
	// Co-authorship (direct or short path).
	if d := biblio.CoauthorDistance(e.coauthorNet, a, b, 3); d == 1 {
		w := 0.0
		if ea, ok := e.coauthorNet.EdgeBetween(e.coauthorNet.Lookup(a), e.coauthorNet.Lookup(b), biblio.EdgeCoauthor); ok {
			w = ea.Weight
		}
		add(EvCoauthor, 0.6+0.1*w, fmt.Sprintf("co-authored %.0f paper(s)", w))
	} else if d > 1 {
		add(EvCoauthor, 1/float64(d+1), fmt.Sprintf("co-authorship distance %d", d))
	}
	// Citation: direct both ways, then indirect.
	if n := biblio.AuthorCitesAuthor(e.papers, a, b); n > 0 {
		add(EvCitation, 0.5+0.1*float64(n), fmt.Sprintf("%s cites %s's work %d time(s)", a, b, n))
	}
	if n := biblio.AuthorCitesAuthor(e.papers, b, a); n > 0 {
		add(EvCitation, 0.5+0.1*float64(n), fmt.Sprintf("%s cites %s's work %d time(s)", b, a, n))
	}
	if refs := biblio.SharedReferences(e.papers, a, b); len(refs) > 0 {
		add(EvCitation, 0.2+0.05*float64(len(refs)),
			fmt.Sprintf("cite %d common paper(s)", len(refs)))
	}
	// Online following.
	if e.store.FollowsUser(a, b) {
		add(EvFollow, 0.8, a+" follows "+b)
	}
	if e.store.FollowsUser(b, a) {
		add(EvFollow, 0.8, b+" follows "+a)
	}
	// Conference participation.
	confsA := e.conferencesOf(a)
	confsB := e.conferencesOf(b)
	sameConf, sameSeries := 0, 0
	seriesA := map[string]bool{}
	for c, series := range confsA {
		if _, ok := confsB[c]; ok {
			sameConf++
		}
		seriesA[series] = true
	}
	for c, series := range confsB {
		if _, ok := confsA[c]; !ok && seriesA[series] {
			sameSeries++
		}
	}
	if sameConf > 0 {
		add(EvConference, 0.3*float64(sameConf), fmt.Sprintf("attended %d conference(s) together", sameConf))
	} else if sameSeries > 0 {
		add(EvConference, 0.15, "attend the same conference series in different years")
	}
	// Session participation.
	sessA := e.store.SessionsAttendedBy(a)
	sessB := toSet(e.store.SessionsAttendedBy(b))
	sameSess := 0
	for _, s := range sessA {
		if sessB[s] {
			sameSess++
		}
	}
	if sameSess > 0 {
		add(EvSession, 0.4*float64(sameSess), fmt.Sprintf("checked into %d session(s) together", sameSess))
	}
	// Reciprocal Q&A/comment activity.
	if n := e.qaInteractions(a, b); n > 0 {
		add(EvQA, 0.4+0.2*float64(n), fmt.Sprintf("%d question/answer/comment exchange(s)", n))
	}
	// User-provided content similarity.
	if sim := e.contentSimilarity(a, b); sim > 0.05 {
		add(EvContent, sim, fmt.Sprintf("uploaded content similarity %.2f", sim))
	}
	// Activity similarity (browsing/commenting the same objects).
	if sim := e.activitySimilarity(a, b); sim > 0.05 {
		add(EvActivity, sim, fmt.Sprintf("activity overlap %.2f", sim))
	}

	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Strength != evs[j].Strength {
			return evs[i].Strength > evs[j].Strength
		}
		return evs[i].Kind < evs[j].Kind
	})

	ex := Explanation{A: a, B: b, Evidences: evs, Score: FuseWeightedSum(evs)}
	// Connecting paths over the integrated peer network.
	na, nb := e.peerGraph.Lookup(a), e.peerGraph.Lookup(b)
	if na != graph.Invalid && nb != graph.Invalid {
		paths, err := e.peerGraph.KShortestPaths(na, nb, 3, graph.InverseWeightCost)
		if err == nil {
			for _, p := range paths {
				var keys []string
				for _, id := range p.Nodes {
					n, err := e.peerGraph.Node(id)
					if err == nil {
						keys = append(keys, n.Key)
					}
				}
				ex.Paths = append(ex.Paths, keys)
			}
		}
	}
	return ex, nil
}

// FuseWeightedSum combines evidence by weight-normalized sum — the
// default fusion rule.
func FuseWeightedSum(evs []Evidence) float64 {
	var num, den float64
	for _, ev := range evs {
		w := evidenceWeights[ev.Kind]
		num += w * ev.Strength
		den += w
	}
	if den == 0 {
		return 0
	}
	return num / den * normalizeCount(len(evs))
}

// FuseMax combines evidence by the single strongest class — the ablation
// alternative benchmarked in E2.
func FuseMax(evs []Evidence) float64 {
	var m float64
	for _, ev := range evs {
		if s := evidenceWeights[ev.Kind] * ev.Strength; s > m {
			m = s
		}
	}
	return m
}

// normalizeCount dampens single-evidence relationships: many independent
// evidences make a relationship more credible.
func normalizeCount(n int) float64 {
	switch {
	case n <= 0:
		return 0
	case n == 1:
		return 0.6
	case n == 2:
		return 0.85
	default:
		return 1
	}
}

func (e *Engine) conferencesOf(u string) map[string]string {
	out := map[string]string{}
	for _, s := range e.store.SessionsAttendedBy(u) {
		if sess, err := e.store.Session(s); err == nil {
			series := ""
			if c, err := e.store.Conference(sess.ConferenceID); err == nil {
				series = c.Series
			}
			out[sess.ConferenceID] = series
		}
	}
	// Publishing at a conference also counts as participation.
	for _, pid := range e.store.PapersOfAuthor(u) {
		if p, err := e.store.Paper(pid); err == nil && p.ConferenceID != "" {
			series := ""
			if c, err := e.store.Conference(p.ConferenceID); err == nil {
				series = c.Series
			}
			out[p.ConferenceID] = series
		}
	}
	return out
}

// qaInteractions counts directed Q&A/comment exchanges between two users.
func (e *Engine) qaInteractions(a, b string) int {
	n := 0
	count := func(asker, owner string) {
		for _, qID := range e.store.QuestionsBy(asker) {
			q, err := e.store.Question(qID)
			if err != nil {
				continue
			}
			for _, o := range e.ownersOf(q.Target) {
				if o == owner {
					n++
				}
			}
			for _, aID := range e.store.AnswersTo(qID) {
				ans, err := e.store.Answer(aID)
				if err == nil && ans.Author == owner {
					n++
				}
			}
		}
	}
	count(a, b)
	count(b, a)
	return n
}

// contentSimilarity compares the users' uploaded content (presentations
// plus authored papers) by TF-IDF cosine.
func (e *Engine) contentSimilarity(a, b string) float64 {
	va := e.userContentVector(a)
	vb := e.userContentVector(b)
	return va.Cosine(vb)
}

// userContentVector returns the snapshot's precomputed content vector
// for a user, overlay first (computed on the spot only for users
// outside the snapshot).
func (e *Engine) userContentVector(u string) textindex.Vector {
	if v, ok := e.contentOver[u]; ok {
		return v
	}
	if v, ok := e.userContent[u]; ok {
		return v
	}
	return e.computeUserContentVector(u)
}

// buildUserContentVectors precomputes every user's uploaded-content
// TF-IDF vector into the snapshot (Builder phase 2; reads the frozen
// index's forward vectors), sharding the per-user loop across the
// builder's workers.
func (e *Engine) buildUserContentVectors() {
	vecs := make([]textindex.Vector, len(e.users))
	e.forUsersParallel(func(i int, u string) {
		vecs[i] = e.computeUserContentVector(u)
	})
	e.userContent = make(map[string]textindex.Vector, len(e.users))
	for i, u := range e.users {
		e.userContent[u] = vecs[i]
	}
}

func (e *Engine) computeUserContentVector(u string) textindex.Vector {
	v := make(textindex.Vector)
	for _, prID := range e.store.PresentationsOfUser(u) {
		if dv, err := e.docVector(DocPresentation + prID); err == nil {
			v.Add(dv, 1)
		}
	}
	for _, pid := range e.store.PapersOfAuthor(u) {
		if dv, err := e.docVector(DocPaper + pid); err == nil {
			v.Add(dv, 1)
		}
	}
	return v
}

// activitySimilarity is the Jaccard overlap of the entities two users
// acted upon in the activity stream.
func (e *Engine) activitySimilarity(a, b string) float64 {
	oa := e.objectsTouched(a)
	ob := e.objectsTouched(b)
	if len(oa) == 0 || len(ob) == 0 {
		return 0
	}
	inter := 0
	for o := range oa {
		if ob[o] {
			inter++
		}
	}
	union := len(oa) + len(ob) - inter
	return float64(inter) / float64(union)
}

func (e *Engine) objectsTouched(u string) map[string]bool {
	out := map[string]bool{}
	for _, ev := range e.store.EventsByActor(u) {
		if ev.Object != "" {
			out[ev.Object] = true
		}
	}
	return out
}

func intersect(a, b []string) []string {
	set := toSet(a)
	var out []string
	for _, x := range b {
		if set[x] {
			out = append(out, x)
		}
	}
	sort.Strings(out)
	return out
}

func toSet(xs []string) map[string]bool {
	m := make(map[string]bool, len(xs))
	for _, x := range xs {
		m[x] = true
	}
	return m
}

func maxLen(a, b []string) int {
	if len(a) > len(b) {
		return len(a)
	}
	if len(b) == 0 {
		return 1
	}
	return len(b)
}
