package hive

// Sharded write path. One Platform funnels every write through one
// journal lock and one serial delta pipeline; a Sharded runs N
// independent Platforms — each with its own kv store, journal,
// change-event stream and delta pipeline — and routes every mutation to
// the shard owning its user, so writes to different shards commit and
// fold into serving snapshots in parallel. Reads scatter-gather: search
// fans out under merged global corpus statistics and k-way merges the
// per-shard top-k (bit-identical to an unsharded build — see
// internal/textindex/stats.go), feeds merge per-shard newest-first
// event streams with a per-shard sequence-vector cursor, and set reads
// (attendees, questions, tags) union disjoint per-shard slices.
//
// Placement is by owner hash (api.ShardOf — part of the wire contract,
// shared with the client SDK): papers live on their first author's
// shard, workpads and check-ins on their owner's, and entities that
// hang off another entity (presentations, questions, comments,
// answers, workpad items) follow it, found by probing.
// Reference entities every shard validates against — users, conferences,
// sessions — are broadcast to all shards; they are tiny, rarely written
// and never text-indexed, so the duplication costs little and keeps
// every store-local validation and every engine's user table intact.
//
// The shard count is fixed for the life of a data dir (a manifest under
// Dir enforces it): placement is pure hashing with no relocation map,
// so changing N would orphan every previously routed entity.
//
// Per-shard evidence graphs see only their shard's interactions, so
// engine services that walk them (peer recommendation, explanation,
// history) answer from the owner shard's evidence — a documented
// approximation; search, feeds and set reads are exact.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"hive/api"
	"hive/internal/core"
	"hive/internal/metrics"
	"hive/internal/social"
	"hive/internal/textindex"
	"hive/internal/topk"
)

// Sharded is a shard-partitioned platform: N shard-leader Platforms in
// one process behind an owner-hash router. Its mutation and read
// surface mirrors Platform's, so servers and tests can drive either.
type Sharded struct {
	shards []*Platform
}

// shardManifest pins a data dir's shard count across reopens.
type shardManifest struct {
	Shards int `json:"shards"`
}

// OpenSharded opens an N-shard platform. With a durable Dir each shard
// lives under Dir/shard-<i> with its own journal, and Dir/shards.json
// records N: reopening with a different count fails (the shard count is
// fixed for the life of a data dir). opts applies to every shard; the
// Clock is shared so the shards consume one time source in arrival
// order. Cluster mode composes per shard across processes, not inside
// one — opts.Cluster must be nil.
func OpenSharded(shards int, opts Options) (*Sharded, error) {
	if shards < 1 {
		return nil, fmt.Errorf("hive: shard count %d < 1", shards)
	}
	if opts.Cluster != nil {
		return nil, errors.New("hive: per-shard cluster replication runs one process per shard leader; Cluster must be nil under OpenSharded")
	}
	if opts.Dir != "" {
		if err := checkShardManifest(opts.Dir, shards); err != nil {
			return nil, err
		}
	}
	sh := &Sharded{shards: make([]*Platform, 0, shards)}
	for i := 0; i < shards; i++ {
		po := opts
		if opts.Dir != "" {
			po.Dir = filepath.Join(opts.Dir, fmt.Sprintf("shard-%d", i))
		}
		p, err := Open(po)
		if err != nil {
			sh.Close()
			return nil, fmt.Errorf("hive: open shard %d: %w", i, err)
		}
		p.shardID = i
		sh.shards = append(sh.shards, p)
	}
	return sh, nil
}

// checkShardManifest records (or verifies) the data dir's shard count.
func checkShardManifest(dir string, shards int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "shards.json")
	if raw, err := os.ReadFile(path); err == nil {
		var m shardManifest
		if err := json.Unmarshal(raw, &m); err != nil {
			return fmt.Errorf("hive: corrupt shard manifest %s: %w", path, err)
		}
		if m.Shards != shards {
			return fmt.Errorf("hive: data dir %s was created with %d shards, asked to open with %d: the shard count is fixed for the life of a data dir", dir, m.Shards, shards)
		}
		return nil
	}
	raw, err := json.Marshal(shardManifest{Shards: shards})
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}

// ShardID reports this platform's position in a sharded deployment's
// shard map (0 on standalone platforms).
func (p *Platform) ShardID() int { return p.shardID }

// ShardCount reports the number of shards.
func (sh *Sharded) ShardCount() int { return len(sh.shards) }

// ShardOf maps an owner to its shard (the wire-contract hash).
func (sh *Sharded) ShardOf(owner string) int { return api.ShardOf(owner, len(sh.shards)) }

// Shard returns one shard's Platform.
func (sh *Sharded) Shard(i int) *Platform { return sh.shards[i] }

// Shards returns the shard Platforms in shard order. The slice is
// shared; treat it as read-only.
func (sh *Sharded) Shards() []*Platform { return sh.shards }

// home returns the Platform owning a user's partition.
func (sh *Sharded) home(owner string) *Platform { return sh.shards[sh.ShardOf(owner)] }

// Close closes every shard, returning the first error.
func (sh *Sharded) Close() error {
	var first error
	for _, p := range sh.shards {
		if p == nil {
			continue
		}
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// forAll runs fn on every shard concurrently and returns the first
// error (by shard order, deterministically).
func (sh *Sharded) forAll(fn func(p *Platform) error) error {
	errs := make([]error, len(sh.shards))
	var wg sync.WaitGroup
	for i, p := range sh.shards {
		wg.Add(1)
		go func(i int, p *Platform) {
			defer wg.Done()
			errs[i] = fn(p)
		}(i, p)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Refresh compacts every shard — in parallel, the point of the split.
func (sh *Sharded) Refresh() error { return sh.forAll(func(p *Platform) error { return p.Refresh() }) }

// ApplyDeltas drains every shard's pending change events.
func (sh *Sharded) ApplyDeltas() error {
	return sh.forAll(func(p *Platform) error { return p.ApplyDeltas() })
}

// RefreshAsync kicks a background compaction on every shard.
func (sh *Sharded) RefreshAsync() {
	for _, p := range sh.shards {
		p.RefreshAsync()
	}
}

// AutoRefresh starts each shard's background compaction loop.
func (sh *Sharded) AutoRefresh(interval time.Duration) {
	for _, p := range sh.shards {
		p.AutoRefresh(interval)
	}
}

// StopAutoRefresh stops every shard's loop.
func (sh *Sharded) StopAutoRefresh() {
	for _, p := range sh.shards {
		p.StopAutoRefresh()
	}
}

// Generation sums the shard snapshot generations: any shard swap
// changes cross-shard query results, so the sum is the scatter-gather
// read path's cache/ETag key.
func (sh *Sharded) Generation() uint64 {
	var g uint64
	for _, p := range sh.shards {
		g += p.Generation()
	}
	return g
}

// Stale reports whether any shard has unapplied change events.
func (sh *Sharded) Stale() bool {
	for _, p := range sh.shards {
		if p.Stale() {
			return true
		}
	}
	return false
}

// Batched coalesces a multi-entity load into one change batch per
// shard: the shards' Batched scopes nest, so every routed write inside
// fn lands in its shard's single coalesced batch (one snapshot
// invalidation per shard instead of one per entity).
func (sh *Sharded) Batched(fn func() error) error {
	var run func(i int) error
	run = func(i int) error {
		if i == len(sh.shards) {
			return fn()
		}
		return sh.shards[i].store.Batched(func() error { return run(i + 1) })
	}
	return run(0)
}

// broadcast applies a reference-entity write to every shard, in shard
// order. The write must be deterministic and clock-free so replicas
// stay identical; the store-level Put{User,Conference,Session} are.
func (sh *Sharded) broadcast(fn func(p *Platform) error) error {
	for _, p := range sh.shards {
		if err := fn(p); err != nil {
			return err
		}
	}
	return nil
}

// shardWhere returns the first shard whose store satisfies the probe,
// or -1. Entities that hang off another entity route with it.
func (sh *Sharded) shardWhere(probe func(st *social.Store) bool) int {
	for i, p := range sh.shards {
		if probe(p.store) {
			return i
		}
	}
	return -1
}

// --- Mutations (routed) -------------------------------------------------------

// RegisterUser broadcasts the profile to every shard (reference data).
func (sh *Sharded) RegisterUser(u User) error {
	return sh.broadcast(func(p *Platform) error { return p.RegisterUser(u) })
}

// CreateConference broadcasts the conference to every shard.
func (sh *Sharded) CreateConference(c Conference) error {
	return sh.broadcast(func(p *Platform) error { return p.CreateConference(c) })
}

// CreateSession broadcasts the session to every shard.
func (sh *Sharded) CreateSession(s Session) error {
	return sh.broadcast(func(p *Platform) error { return p.CreateSession(s) })
}

// PublishPaper routes the paper to its first author's shard.
func (sh *Sharded) PublishPaper(pa Paper) error {
	owner := pa.ID
	if len(pa.Authors) > 0 {
		owner = pa.Authors[0]
	}
	return sh.home(owner).PublishPaper(pa)
}

// UploadPresentation routes the presentation to its paper's shard (the
// slide content joins the paper's partition and text index).
func (sh *Sharded) UploadPresentation(pr Presentation) error {
	i := sh.shardWhere(func(st *social.Store) bool { return st.HasPaper(pr.PaperID) })
	if i < 0 {
		i = sh.ShardOf(pr.Owner) // surfaces the store's not-found error
	}
	return sh.shards[i].UploadPresentation(pr)
}

// Connect routes the connection to a's shard and mirrors the edge onto
// b's shard (edge only, no duplicate activity event) so both engines
// see it in their graph layers.
func (sh *Sharded) Connect(a, b string) error {
	ia, ib := sh.ShardOf(a), sh.ShardOf(b)
	if err := sh.shards[ia].Connect(a, b); err != nil {
		return err
	}
	if ib == ia {
		return nil
	}
	p := sh.shards[ib]
	return p.mutate(func() error { return p.store.MirrorConnection(a, b) })
}

// Connected reports whether two users are connected (either side's
// shard holds the edge; a's is asked).
func (sh *Sharded) Connected(a, b string) bool { return sh.home(a).Connected(a, b) }

// Follow routes the edge to the follower's shard — the shard that
// serves the follower's feed.
func (sh *Sharded) Follow(follower, followee string) error {
	return sh.home(follower).Follow(follower, followee)
}

// Unfollow removes the edge from the follower's shard.
func (sh *Sharded) Unfollow(follower, followee string) error {
	return sh.home(follower).Unfollow(follower, followee)
}

// CheckIn routes attendance to the attendee's shard (sessions are
// broadcast, so validation is local).
func (sh *Sharded) CheckIn(sessionID, userID string) error {
	return sh.home(userID).CheckIn(sessionID, userID)
}

// Ask routes the question to the shard holding its target paper (the
// discussion joins the content's partition, and the event's session
// hashtag resolves there); questions about broadcast entities fall
// back to the author's shard.
func (sh *Sharded) Ask(q Question) error {
	i := sh.shardWhere(func(st *social.Store) bool { return st.HasPaper(q.Target) })
	if i < 0 {
		i = sh.ShardOf(q.Author)
	}
	return sh.shards[i].Ask(q)
}

// AnswerQuestion routes the answer to its question's shard.
func (sh *Sharded) AnswerQuestion(a Answer) error {
	i := sh.shardWhere(func(st *social.Store) bool { return st.HasQuestion(a.QuestionID) })
	if i < 0 {
		i = sh.ShardOf(a.Author)
	}
	return sh.shards[i].AnswerQuestion(a)
}

// PostComment routes the comment to its target paper's shard (same
// placement rule as questions), falling back to the author's shard.
func (sh *Sharded) PostComment(c Comment) error {
	i := sh.shardWhere(func(st *social.Store) bool { return st.HasPaper(c.Target) })
	if i < 0 {
		i = sh.ShardOf(c.Author)
	}
	return sh.shards[i].PostComment(c)
}

// CreateWorkpad routes the workpad to its owner's shard.
func (sh *Sharded) CreateWorkpad(w Workpad) error { return sh.home(w.Owner).CreateWorkpad(w) }

// AddToWorkpad routes the item to its workpad's shard.
func (sh *Sharded) AddToWorkpad(workpadID string, item WorkpadItem) error {
	i := sh.shardWhere(func(st *social.Store) bool { return st.HasWorkpad(workpadID) })
	if i < 0 {
		i = 0
	}
	return sh.shards[i].AddToWorkpad(workpadID, item)
}

// ActivateWorkpad routes to the owner's shard (workpads live there).
func (sh *Sharded) ActivateWorkpad(owner, workpadID string) error {
	return sh.home(owner).ActivateWorkpad(owner, workpadID)
}

// ExportCollection routes to the workpad's shard; the collection
// inherits the workpad owner's partition.
func (sh *Sharded) ExportCollection(workpadID, collectionID string) (Collection, error) {
	i := sh.shardWhere(func(st *social.Store) bool { return st.HasWorkpad(workpadID) })
	if i < 0 {
		i = 0
	}
	return sh.shards[i].ExportCollection(workpadID, collectionID)
}

// ImportCollection copies a collection (from whichever shard holds it)
// into a new active workpad on the importing owner's shard.
func (sh *Sharded) ImportCollection(collectionID, owner, workpadID string) (Workpad, error) {
	src := sh.shardWhere(func(st *social.Store) bool { return st.HasCollection(collectionID) })
	dst := sh.ShardOf(owner)
	if src < 0 || src == dst {
		return sh.shards[dst].ImportCollection(collectionID, owner, workpadID)
	}
	c, err := sh.shards[src].store.Collection(collectionID)
	if err != nil {
		return Workpad{}, err
	}
	w := Workpad{
		ID:    workpadID,
		Owner: owner,
		Name:  c.Name,
		Items: append([]WorkpadItem(nil), c.Items...),
	}
	p := sh.shards[dst]
	err = p.mutate(func() error {
		return p.store.Batched(func() error {
			if err := p.store.PutWorkpad(w); err != nil {
				return err
			}
			return p.store.SetActiveWorkpad(owner, workpadID)
		})
	})
	if err != nil {
		return Workpad{}, err
	}
	return w, nil
}

// LogBrowse routes the browse event to the user's shard.
func (sh *Sharded) LogBrowse(userID, object string) error {
	return sh.home(userID).LogBrowse(userID, object)
}

// --- Entity reads -------------------------------------------------------------

// GetUser reads the broadcast profile (any shard; 0 is asked).
func (sh *Sharded) GetUser(id string) (User, error) { return sh.shards[0].GetUser(id) }

// Users lists all user IDs (broadcast; shard 0 is asked).
func (sh *Sharded) Users() []string { return sh.shards[0].Users() }

// Attendees unions the per-shard attendee sets (check-ins are routed by
// attendee, so the slices are disjoint; the union is sorted like the
// unsharded scan).
func (sh *Sharded) Attendees(sessionID string) []string {
	return sh.unionSorted(func(st *social.Store) []string { return st.Attendees(sessionID) })
}

// QuestionsAbout unions the per-shard question IDs targeting an entity.
func (sh *Sharded) QuestionsAbout(target string) []string {
	return sh.unionSorted(func(st *social.Store) []string { return st.QuestionsAbout(target) })
}

// AnswersTo unions the per-shard answer IDs (answers live with their
// question, so one shard holds them all; the union is still exact).
func (sh *Sharded) AnswersTo(questionID string) []string {
	return sh.unionSorted(func(st *social.Store) []string { return st.AnswersTo(questionID) })
}

// ActiveWorkpad reads the owner's shard.
func (sh *Sharded) ActiveWorkpad(owner string) (Workpad, error) {
	return sh.home(owner).ActiveWorkpad(owner)
}

func (sh *Sharded) unionSorted(fetch func(st *social.Store) []string) []string {
	var out []string
	for _, p := range sh.shards {
		out = append(out, fetch(p.store)...)
	}
	sort.Strings(out)
	// Shards partition ownership so duplicates shouldn't occur; dedup
	// anyway to keep the union a set.
	return dedupSorted(out)
}

func dedupSorted(xs []string) []string {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// --- Feeds (scatter-gather with sequence-vector cursors) ----------------------

// feedBetter orders the newest-first cross-shard merge: later events
// first; MergeTopK breaks timestamp ties toward the lower shard index,
// and each shard's own stream stays in its sequence order.
func feedBetter(a, b shardEvent) bool { return a.ev.At > b.ev.At }

type shardEvent struct {
	ev    Event
	shard int
}

// Feed returns the user's update feed — events by their followees,
// oldest first, the most recent limit of them — gathered across every
// shard (a followee's activity lives on *its* entity's shard, e.g. an
// answer on the question's). Matches the unsharded Platform.Feed order
// whenever event timestamps are distinct.
func (sh *Sharded) Feed(userID string, limit int) []Event {
	page, _ := sh.feedScatter(context.Background(), userID, make([]uint64, len(sh.shards)), limit)
	evs := eventsOf(page)
	// The merged page is newest-first; the Platform surface is oldest-first.
	for i, j := 0, len(evs)-1; i < j; i, j = i+1, j-1 {
		evs[i], evs[j] = evs[j], evs[i]
	}
	return evs
}

// FeedPage returns one newest-first feed page plus the cursor for the
// next. The cursor is a per-shard sequence-bound vector (see
// api.EncodeShardCursor): each shard resumes strictly below the lowest
// sequence already consumed from it, so pages never skip or repeat an
// event while any shard keeps writing — the guarantee a single global
// offset cannot give once sequences are per-shard. ctx carries the
// request trace (if any): each shard's gather is recorded as a stage.
func (sh *Sharded) FeedPage(ctx context.Context, userID, cursor string, limit int) ([]Event, string, error) {
	bounds, err := api.DecodeShardCursor(cursor, len(sh.shards))
	if err != nil {
		return nil, "", err
	}
	if limit <= 0 {
		limit = 20
	}
	page, hasMore := sh.feedScatter(ctx, userID, bounds, limit)
	// Advance each consumed shard's bound to its lowest consumed
	// sequence; untouched shards keep their previous bound.
	for _, se := range page {
		bounds[se2shard(se)] = se2seq(se)
	}
	next := ""
	if hasMore {
		next = api.EncodeShardCursor(bounds)
	}
	return eventsOf(page), next, nil
}

// The page carries shard provenance via parallel bookkeeping: Feed and
// FeedPage both consume feedScatter's merged shardEvent page, so the
// helpers below unwrap it.
func se2shard(se shardEvent) int  { return se.shard }
func se2seq(se shardEvent) uint64 { return se.ev.Seq }
func eventsOf(ses []shardEvent) []Event {
	evs := make([]Event, len(ses))
	for i, se := range ses {
		evs[i] = se.ev
	}
	return evs
}

// feedScatter fans the followee set out across every shard and merges
// the newest-first streams. limit <= 0 means everything. hasMore
// reports whether unconsumed events remained past the page.
func (sh *Sharded) feedScatter(ctx context.Context, userID string, bounds []uint64, limit int) (page []shardEvent, hasMore bool) {
	defer mScatterFeedSeconds.ObserveSince(time.Now())
	tr := metrics.TraceFrom(ctx)
	followees := sh.home(userID).store.Following(userID)
	if len(followees) == 0 {
		return nil, false
	}
	fetch := 0
	if limit > 0 {
		fetch = limit + 1 // one extra detects leftovers precisely
	}
	lists := make([][]shardEvent, len(sh.shards))
	var wg sync.WaitGroup
	for i, p := range sh.shards {
		wg.Add(1)
		go func(i int, st *social.Store) {
			defer wg.Done()
			defer tr.StartStage(fmt.Sprintf("feed_shard%d", i))()
			evs := st.EventsByActorsBefore(followees, bounds[i], fetch)
			ses := make([]shardEvent, len(evs))
			for j, ev := range evs {
				ses[j] = shardEvent{ev: ev, shard: i}
			}
			lists[i] = ses
		}(i, p.store)
	}
	wg.Wait()
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	page = topk.MergeTopK(lists, limit, feedBetter)
	return page, total > len(page)
}

// EventsByTag merges the hashtag fan-out across shards, oldest first
// like the unsharded scan.
func (sh *Sharded) EventsByTag(tag string) []Event {
	lists := make([][]Event, len(sh.shards))
	for i, p := range sh.shards {
		lists[i] = p.store.EventsByTag(tag)
	}
	return topk.MergeTopK(lists, 0, func(a, b Event) bool { return a.At < b.At })
}

// --- Knowledge services (scatter-gather / owner-shard routed) -----------------

// engines resolves every shard's current engine snapshot once, so a
// multi-phase read works against one consistent set of snapshots.
func (sh *Sharded) engines() ([]*core.Engine, error) {
	engs := make([]*core.Engine, len(sh.shards))
	for i, p := range sh.shards {
		eng, err := p.Engine()
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		engs[i] = eng
	}
	return engs, nil
}

// EngineFor returns the owner's shard engine (the one holding their
// partition's evidence).
func (sh *Sharded) EngineFor(owner string) (*core.Engine, error) {
	return sh.home(owner).Engine()
}

var searchBetter = func(a, b textindex.Result) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.DocID < b.DocID
}

// Search scatter-gathers BM25 search: phase one gathers each shard's
// corpus statistics for the query terms and sums them (exact — integer
// counts over disjoint documents), phase two has every shard score its
// own postings under the merged global statistics, and the per-shard
// top-k lists k-way merge under the same score/doc-ID order the
// unsharded path uses. Results are bit-identical to one unsharded
// index of the union corpus, tie-breaks included.
func (sh *Sharded) Search(ctx context.Context, query string, k int) ([]SearchResult, error) {
	merged, _, err := sh.scatterSearch(ctx, query, k)
	if err != nil {
		return nil, err
	}
	return toResults(merged), nil
}

// scatterSearch runs the two-phase fan-out and also reports which
// shard engine owns each returned document (for re-ranking reads). ctx
// carries the request trace (if any): each shard's scoring pass is
// recorded as a stage, so debug/traces shows where a slow fan-out
// spent its time.
func (sh *Sharded) scatterSearch(ctx context.Context, query string, k int) ([]textindex.Result, map[string]*core.Engine, error) {
	defer mScatterSearchSeconds.ObserveSince(time.Now())
	tr := metrics.TraceFrom(ctx)
	engs, err := sh.engines()
	if err != nil {
		return nil, nil, err
	}
	views := make([]*textindex.Segmented, len(engs))
	terms := textindex.Terms(query)
	parts := make([]textindex.CorpusStats, 0, len(engs))
	for i, eng := range engs {
		if seg := eng.Segment(); seg != nil {
			views[i] = seg
			parts = append(parts, seg.Stats(terms))
		}
	}
	g := textindex.MergeStats(parts)
	lists := make([][]textindex.Result, len(engs))
	var wg sync.WaitGroup
	for i, v := range views {
		if v == nil {
			continue
		}
		wg.Add(1)
		go func(i int, v *textindex.Segmented) {
			defer wg.Done()
			defer tr.StartStage(fmt.Sprintf("search_shard%d", i))()
			lists[i] = v.SearchStats(query, k, g)
		}(i, v)
	}
	wg.Wait()
	owner := make(map[string]*core.Engine)
	for i, rs := range lists {
		for _, r := range rs {
			owner[r.DocID] = engs[i]
		}
	}
	return topk.MergeTopK(lists, k, searchBetter), owner, nil
}

func toResults(rs []textindex.Result) []SearchResult {
	out := make([]SearchResult, len(rs))
	for i, r := range rs {
		out[i] = SearchResult{DocID: r.DocID, Score: r.Score}
	}
	return out
}

// SearchWithContext scatter-gathers the BM25 base exactly, then
// re-ranks by similarity to the user's context vector (from their home
// shard, which holds their workpad). Document vectors come from the
// owning shard's statistics — a shard-local approximation, unlike the
// exact base ranking.
func (sh *Sharded) SearchWithContext(ctx context.Context, userID, query string, k int) ([]SearchResult, error) {
	home, err := sh.EngineFor(userID)
	if err != nil {
		return nil, err
	}
	cvec := home.ContextVector(userID)
	base, owner, err := sh.scatterSearch(ctx, query, 4*k)
	if err != nil {
		return nil, err
	}
	if len(cvec) == 0 {
		if k > 0 && len(base) > k {
			base = base[:k]
		}
		return toResults(base), nil
	}
	const ctxWeight = 1.0
	h := topk.New[textindex.Result](k, searchBetter)
	for _, r := range base {
		sim := 0.0
		if eng := owner[r.DocID]; eng != nil {
			if dv, err := eng.DocTFIDF(r.DocID); err == nil {
				sim = dv.Cosine(cvec)
			}
		}
		h.Push(textindex.Result{DocID: r.DocID, Score: r.Score * (1 + ctxWeight*sim)})
	}
	return toResults(h.Sorted()), nil
}

// docShard locates the shard engine holding an indexed document.
func (sh *Sharded) docShard(docID string) (*core.Engine, string, error) {
	engs, err := sh.engines()
	if err != nil {
		return nil, "", err
	}
	var lastErr error
	for _, eng := range engs {
		seg := eng.Segment()
		if seg == nil {
			continue
		}
		text, err := seg.Text(docID)
		if err == nil {
			return eng, text, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("%w: %q", textindex.ErrDocNotFound, docID)
	}
	return nil, "", lastErr
}

// Preview extracts context-relevant snippets: the text from the shard
// holding the document, the context from the user's home shard.
func (sh *Sharded) Preview(userID, docID string, k int) ([]Snippet, error) {
	_, text, err := sh.docShard(docID)
	if err != nil {
		return nil, err
	}
	home, err := sh.EngineFor(userID)
	if err != nil {
		return nil, err
	}
	return textindex.ExtractSnippets(text, home.ContextVector(userID), k), nil
}

// Annotate extracts key concepts from the shard holding the document.
func (sh *Sharded) Annotate(docID string, k int) ([]Keyphrase, error) {
	_, text, err := sh.docShard(docID)
	if err != nil {
		return nil, err
	}
	return textindex.ExtractKeyphrases(text, k), nil
}

// UpdateDigest summarizes the user's cross-shard feed. Event targets
// are classified by probing every shard (an event about a paper on
// another shard must still classify as "paper").
func (sh *Sharded) UpdateDigest(userID string, budget int) (*Summary, error) {
	home, err := sh.EngineFor(userID)
	if err != nil {
		return nil, err
	}
	feed := sh.Feed(userID, 0)
	return home.DigestOfEvents(feed, budget, sh.targetKind)
}

// targetKind classifies an entity against every shard's store, in the
// unsharded classifier's precedence order.
func (sh *Sharded) targetKind(entity string) string {
	if entity == "" {
		return "other"
	}
	probes := []struct {
		kind string
		has  func(st *social.Store) bool
	}{
		{"paper", func(st *social.Store) bool { return st.HasPaper(entity) }},
		{"presentation", func(st *social.Store) bool { _, err := st.Presentation(entity); return err == nil }},
		{"question", func(st *social.Store) bool { return st.HasQuestion(entity) }},
		{"session", func(st *social.Store) bool { _, err := st.Session(entity); return err == nil }},
		{"conference", func(st *social.Store) bool { _, err := st.Conference(entity); return err == nil }},
		{"user", func(st *social.Store) bool { _, err := st.User(entity); return err == nil }},
	}
	for _, pr := range probes {
		for _, p := range sh.shards {
			if pr.has(p.store) {
				return pr.kind
			}
		}
	}
	return "other"
}

// Communities concatenates per-shard community discoveries, largest
// first. Shards discover over their own evidence graphs — cross-shard
// ties are a documented approximation gap.
func (sh *Sharded) Communities() ([][]string, error) {
	engs, err := sh.engines()
	if err != nil {
		return nil, err
	}
	var out [][]string
	for _, eng := range engs {
		out = append(out, eng.Communities()...)
	}
	sort.SliceStable(out, func(i, j int) bool { return len(out[i]) > len(out[j]) })
	return out, nil
}

// CommunityOf answers from the user's home shard.
func (sh *Sharded) CommunityOf(userID string) ([]string, error) {
	eng, err := sh.EngineFor(userID)
	if err != nil {
		return nil, err
	}
	return eng.CommunityOf(userID), nil
}

// The remaining engine services answer from the relevant user's home
// shard: its engine holds that user's partition of the evidence.

// Explain explains the relationship between two researchers from a's
// shard evidence.
func (sh *Sharded) Explain(a, b string) (Explanation, error) {
	eng, err := sh.EngineFor(a)
	if err != nil {
		return Explanation{}, err
	}
	return eng.Explain(a, b)
}

// RecommendPeers suggests peers from the user's shard evidence.
func (sh *Sharded) RecommendPeers(userID string, k int) ([]PeerRecommendation, error) {
	eng, err := sh.EngineFor(userID)
	if err != nil {
		return nil, err
	}
	return eng.RecommendPeers(userID, k)
}

// SuggestSessions ranks a conference's sessions for the user.
func (sh *Sharded) SuggestSessions(userID, confID string, k int) ([]SessionSuggestion, error) {
	eng, err := sh.EngineFor(userID)
	if err != nil {
		return nil, err
	}
	return eng.SuggestSessions(userID, confID, k)
}

// RecommendResources suggests documents from the user's shard corpus.
func (sh *Sharded) RecommendResources(userID string, k int, useContext bool) ([]ResourceRecommendation, error) {
	eng, err := sh.EngineFor(userID)
	if err != nil {
		return nil, err
	}
	return eng.RecommendResources(userID, k, useContext)
}

// SearchHistory searches the user's personal history on their shard.
func (sh *Sharded) SearchHistory(userID, query string, useContext bool, limit int) ([]HistoryEntry, error) {
	eng, err := sh.EngineFor(userID)
	if err != nil {
		return nil, err
	}
	return eng.SearchHistory(userID, query, useContext, limit)
}

// ExplainResource explains a user-resource relationship on the user's
// shard.
func (sh *Sharded) ExplainResource(userID, entity string) ([]ResourceEvidence, error) {
	eng, err := sh.EngineFor(userID)
	if err != nil {
		return nil, err
	}
	return eng.ExplainResource(userID, entity)
}

// KnowledgePaths answers from shard 0's knowledge base (entity IDs are
// prefixed, not owner-addressed; cross-shard path stitching is future
// work).
func (sh *Sharded) KnowledgePaths(a, b string, k int) ([]KnowledgePath, error) {
	eng, err := sh.shards[0].Engine()
	if err != nil {
		return nil, err
	}
	return eng.KnowledgePaths(a, b, k), nil
}

// MonitorActivity runs change detection over shard 0's activity stream.
func (sh *Sharded) MonitorActivity(epochEvents int) ([]ChangeResult, error) {
	eng, err := sh.shards[0].Engine()
	if err != nil {
		return nil, err
	}
	return eng.MonitorActivity(epochEvents)
}

// DetectOverlap compares two documents when one shard holds both.
func (sh *Sharded) DetectOverlap(docA, docB string) (resemblance, containment float64, err error) {
	engA, _, err := sh.docShard(docA)
	if err != nil {
		return 0, 0, err
	}
	return engA.DetectOverlap(docA, docB)
}
