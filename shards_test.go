package hive

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// mutation is the write surface shared by Platform and Sharded; the
// parity test drives both through it with an identical script.
type mutation interface {
	RegisterUser(User) error
	CreateConference(Conference) error
	CreateSession(Session) error
	PublishPaper(Paper) error
	UploadPresentation(Presentation) error
	Connect(a, b string) error
	Follow(follower, followee string) error
	CheckIn(sessionID, userID string) error
	Ask(Question) error
	AnswerQuestion(Answer) error
	PostComment(Comment) error
	CreateWorkpad(Workpad) error
	AddToWorkpad(string, WorkpadItem) error
	ActivateWorkpad(owner, workpadID string) error
	LogBrowse(userID, object string) error
}

var parityVocab = []string{
	"stream", "join", "index", "shard", "quorum", "vector", "graph",
	"ranking", "snapshot", "delta", "journal", "epoch", "lease",
	"summarize", "context", "workpad", "conference", "session",
	"collaboration", "recommendation", "tensor", "activation",
	"overlap", "digest", "latency", "throughput", "partition",
}

func phrase(rng *rand.Rand, n int) string {
	s := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			s += " "
		}
		s += parityVocab[rng.Intn(len(parityVocab))]
	}
	return s
}

// parityScript builds a deterministic mutation sequence exercising
// every routed entity kind: broadcast reference data, owner-hashed
// content, probe-routed children, graph edges and activity.
func parityScript(seed int64) []func(m mutation) error {
	rng := rand.New(rand.NewSource(seed))
	var script []func(m mutation) error
	add := func(fn func(m mutation) error) { script = append(script, fn) }

	users := make([]string, 12)
	for i := range users {
		u := User{
			ID:        fmt.Sprintf("u%d", i),
			Name:      fmt.Sprintf("User %d", i),
			Interests: []string{phrase(rng, 2), phrase(rng, 1)},
		}
		users[i] = u.ID
		add(func(m mutation) error { return m.RegisterUser(u) })
	}
	pick := func(xs []string) string { return xs[rng.Intn(len(xs))] }

	confs := []string{"edbt", "vldb"}
	for _, c := range confs {
		conf := Conference{ID: c, Name: c, Year: 2013}
		add(func(m mutation) error { return m.CreateConference(conf) })
	}
	sessions := make([]string, 4)
	for i := range sessions {
		s := Session{
			ID:           fmt.Sprintf("s%d", i),
			ConferenceID: confs[i%len(confs)],
			Title:        phrase(rng, 3),
			Hashtag:      fmt.Sprintf("#s%d", i),
		}
		sessions[i] = s.ID
		add(func(m mutation) error { return m.CreateSession(s) })
	}

	papers := make([]string, 14)
	for i := range papers {
		pa := Paper{
			ID:           fmt.Sprintf("p%d", i),
			Title:        phrase(rng, 4),
			Abstract:     phrase(rng, 12),
			Authors:      []string{pick(users), pick(users)},
			ConferenceID: pick(confs),
			SessionID:    pick(sessions),
		}
		papers[i] = pa.ID
		add(func(m mutation) error { return m.PublishPaper(pa) })
	}
	for i := 0; i < 7; i++ {
		pr := Presentation{
			ID:      fmt.Sprintf("pr%d", i),
			PaperID: pick(papers),
			Owner:   pick(users),
			Title:   phrase(rng, 3),
			Text:    phrase(rng, 20),
		}
		add(func(m mutation) error { return m.UploadPresentation(pr) })
	}

	for i := 0; i < 10; i++ {
		a, b := pick(users), pick(users)
		if a == b {
			continue
		}
		add(func(m mutation) error { return m.Connect(a, b) })
	}
	for i := 0; i < 20; i++ {
		a, b := pick(users), pick(users)
		if a == b {
			continue
		}
		add(func(m mutation) error { return m.Follow(a, b) })
	}
	for i := 0; i < 12; i++ {
		s, u := pick(sessions), pick(users)
		add(func(m mutation) error { return m.CheckIn(s, u) })
	}

	questions := make([]string, 9)
	for i := range questions {
		q := Question{
			ID:     fmt.Sprintf("q%d", i),
			Author: pick(users),
			Target: pick(papers),
			Text:   phrase(rng, 8),
		}
		questions[i] = q.ID
		add(func(m mutation) error { return m.Ask(q) })
	}
	for i := 0; i < 8; i++ {
		a := Answer{
			ID:         fmt.Sprintf("a%d", i),
			QuestionID: pick(questions),
			Author:     pick(users),
			Text:       phrase(rng, 6),
		}
		add(func(m mutation) error { return m.AnswerQuestion(a) })
	}
	for i := 0; i < 6; i++ {
		c := Comment{
			ID:     fmt.Sprintf("c%d", i),
			Author: pick(users),
			Target: pick(papers),
			Text:   phrase(rng, 5),
		}
		add(func(m mutation) error { return m.PostComment(c) })
	}

	for i := 0; i < 4; i++ {
		owner := pick(users)
		w := Workpad{
			ID:    fmt.Sprintf("w%d", i),
			Owner: owner,
			Name:  phrase(rng, 2),
			Items: []WorkpadItem{{Kind: ItemPaper, Ref: pick(papers)}},
		}
		item := WorkpadItem{Kind: ItemUser, Ref: pick(users)}
		add(func(m mutation) error { return m.CreateWorkpad(w) })
		add(func(m mutation) error { return m.AddToWorkpad(w.ID, item) })
		add(func(m mutation) error { return m.ActivateWorkpad(owner, w.ID) })
	}
	for i := 0; i < 8; i++ {
		u, o := pick(users), "paper/"+pick(papers)
		add(func(m mutation) error { return m.LogBrowse(u, o) })
	}
	return script
}

func zeroSeqs(evs []Event) []Event {
	out := append([]Event(nil), evs...)
	for i := range out {
		out[i].Seq = 0
	}
	return out
}

// TestShardedParity is the sharding correctness property: the same
// mutation script applied to an unsharded Platform and to N shard
// leaders must yield bit-identical search results (scores, order and
// tie-breaks included), identical feeds (modulo per-shard sequence
// numbers) and identical set reads — the scatter-gather read path may
// not be observably different from one big index.
func TestShardedParity(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4} {
		for seed := int64(1); seed <= 2; seed++ {
			t.Run(fmt.Sprintf("shards=%d/seed=%d", shards, seed), func(t *testing.T) {
				ref, err := Open(Options{Clock: testClock()})
				if err != nil {
					t.Fatal(err)
				}
				defer ref.Close()
				sh, err := OpenSharded(shards, Options{Clock: testClock()})
				if err != nil {
					t.Fatal(err)
				}
				defer sh.Close()

				script := parityScript(seed)
				for i, fn := range script {
					if err := fn(ref); err != nil {
						t.Fatalf("unsharded step %d: %v", i, err)
					}
					if err := fn(sh); err != nil {
						t.Fatalf("sharded step %d: %v", i, err)
					}
				}
				if err := ref.Refresh(); err != nil {
					t.Fatal(err)
				}
				if err := sh.Refresh(); err != nil {
					t.Fatal(err)
				}

				rng := rand.New(rand.NewSource(seed * 977))
				for i := 0; i < 10; i++ {
					q := phrase(rng, 1+rng.Intn(3))
					want, err := ref.Search(q, 10)
					if err != nil {
						t.Fatal(err)
					}
					got, err := sh.Search(context.Background(), q, 10)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("Search(%q) diverged:\nunsharded %+v\nsharded   %+v", q, want, got)
					}
				}

				for i := 0; i < 12; i++ {
					u := fmt.Sprintf("u%d", i)
					for _, limit := range []int{0, 5} {
						want := zeroSeqs(ref.Feed(u, limit))
						got := zeroSeqs(sh.Feed(u, limit))
						if !reflect.DeepEqual(want, got) {
							t.Fatalf("Feed(%s,%d) diverged:\nunsharded %+v\nsharded   %+v", u, limit, want, got)
						}
					}
					wantDig, err := ref.UpdateDigest(u, 6)
					if err != nil {
						t.Fatal(err)
					}
					gotDig, err := sh.UpdateDigest(u, 6)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(wantDig, gotDig) {
						t.Fatalf("UpdateDigest(%s) diverged:\nunsharded %+v\nsharded   %+v", u, wantDig, gotDig)
					}
				}

				for i := 0; i < 4; i++ {
					s := fmt.Sprintf("s%d", i)
					if want, got := ref.Attendees(s), sh.Attendees(s); !reflect.DeepEqual(want, got) {
						t.Fatalf("Attendees(%s): unsharded %v sharded %v", s, want, got)
					}
					tag := fmt.Sprintf("#s%d", i)
					want := zeroSeqs(ref.EventsByTag(tag))
					got := zeroSeqs(sh.EventsByTag(tag))
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("EventsByTag(%s) diverged:\nunsharded %+v\nsharded   %+v", tag, want, got)
					}
				}
				for i := 0; i < 14; i++ {
					pa := fmt.Sprintf("p%d", i)
					if want, got := ref.QuestionsAbout(pa), sh.QuestionsAbout(pa); !reflect.DeepEqual(want, got) {
						t.Fatalf("QuestionsAbout(%s): unsharded %v sharded %v", pa, want, got)
					}
				}
				for i := 0; i < 9; i++ {
					q := fmt.Sprintf("q%d", i)
					if want, got := ref.AnswersTo(q), sh.AnswersTo(q); !reflect.DeepEqual(want, got) {
						t.Fatalf("AnswersTo(%s): unsharded %v sharded %v", q, want, got)
					}
				}
				for a := 0; a < 12; a++ {
					for b := 0; b < 12; b++ {
						ua, ub := fmt.Sprintf("u%d", a), fmt.Sprintf("u%d", b)
						if want, got := ref.Connected(ua, ub), sh.Connected(ua, ub); want != got {
							t.Fatalf("Connected(%s,%s): unsharded %v sharded %v", ua, ub, want, got)
						}
					}
				}
			})
		}
	}
}

// TestShardManifestPinsCount: the shard count is fixed for the life of
// a data dir — reopening with a different count must fail, reopening
// with the same count must find the routed data.
func TestShardManifestPinsCount(t *testing.T) {
	dir := t.TempDir()
	sh, err := OpenSharded(2, Options{Dir: dir, Clock: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.RegisterUser(User{ID: "u", Name: "U"}); err != nil {
		t.Fatal(err)
	}
	if err := sh.PublishPaper(Paper{ID: "p", Title: "sharded journal", Authors: []string{"u"}}); err != nil {
		t.Fatal(err)
	}
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenSharded(3, Options{Dir: dir, Clock: testClock()}); err == nil {
		t.Fatal("reopening a 2-shard dir with 3 shards must fail")
	}

	sh2, err := OpenSharded(2, Options{Dir: dir, Clock: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer sh2.Close()
	if _, err := sh2.GetUser("u"); err != nil {
		t.Fatalf("user lost across sharded reopen: %v", err)
	}
	rs, err := sh2.Search(context.Background(), "sharded journal", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 || rs[0].DocID != DocPaper+"p" {
		t.Fatalf("paper not found after sharded reopen: %+v", rs)
	}
}

// TestShardedFeedCursorStability: the feed cursor is a per-shard
// sequence-bound vector, so paginating while other shards keep writing
// must never skip or repeat an event that existed when pagination
// began.
func TestShardedFeedCursorStability(t *testing.T) {
	sh, err := OpenSharded(4, Options{Clock: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()

	actors := make([]string, 6)
	for i := range actors {
		actors[i] = fmt.Sprintf("actor%d", i)
		if err := sh.RegisterUser(User{ID: actors[i], Name: actors[i]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sh.RegisterUser(User{ID: "reader", Name: "Reader"}); err != nil {
		t.Fatal(err)
	}
	for _, a := range actors {
		if err := sh.Follow("reader", a); err != nil {
			t.Fatal(err)
		}
	}
	post := func(i int) {
		t.Helper()
		a := actors[i%len(actors)]
		if err := sh.LogBrowse(a, fmt.Sprintf("obj-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	const initial = 40
	for i := 0; i < initial; i++ {
		post(i)
	}
	// Every event has a globally unique timestamp (one shared clock),
	// so At identifies an event across shards.
	initialSet := make(map[int64]bool)
	for _, ev := range mustFeed(t, sh, "reader") {
		initialSet[ev.At] = true
	}
	if len(initialSet) != initial {
		t.Fatalf("setup: %d distinct events, want %d", len(initialSet), initial)
	}

	seen := make(map[int64]bool)
	cursor := ""
	pages := 0
	extra := initial
	for {
		page, next, err := sh.FeedPage(context.Background(), "reader", cursor, 7)
		if err != nil {
			t.Fatal(err)
		}
		for i, ev := range page {
			if i > 0 && page[i-1].At < ev.At {
				t.Fatalf("page %d not newest-first: %+v", pages, page)
			}
			if seen[ev.At] {
				t.Fatalf("event at=%d repeated across pages", ev.At)
			}
			seen[ev.At] = true
		}
		pages++
		if next == "" {
			break
		}
		cursor = next
		// Concurrent writers on other shards between pages.
		if pages <= 3 {
			for i := 0; i < 5; i++ {
				post(extra)
				extra++
			}
		}
		if pages > 40 {
			t.Fatal("pagination did not terminate")
		}
	}
	for at := range initialSet {
		if !seen[at] {
			t.Fatalf("event at=%d existed before pagination but was skipped", at)
		}
	}
}

func mustFeed(t *testing.T, sh *Sharded, user string) []Event {
	t.Helper()
	return sh.Feed(user, 0)
}
