// Package hive is the public API of the Hive Open Research Network
// Platform (Kim, Chen, Candan, Sapino — EDBT 2013): a conference-centric,
// cross-conference social platform for researchers with integrated
// knowledge services — context-aware search and previews, evidence-based
// peer discovery and explanation, collaborative recommendation, community
// discovery, and activity change monitoring.
//
// A Platform wraps the durable social store and the MiNC knowledge engine.
// Mutations (users, papers, check-ins, questions, workpads, ...) apply
// immediately; knowledge services run against an engine snapshot that is
// rebuilt lazily after mutations (call Refresh to rebuild eagerly).
//
//	p, _ := hive.Open(hive.Options{Dir: ""}) // in-memory
//	defer p.Close()
//	_ = p.RegisterUser(hive.User{ID: "zach", Name: "Zach"})
//	recs, _ := p.RecommendPeers("zach", 5)
package hive

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"hive/internal/core"
	"hive/internal/rdf"
	"hive/internal/social"
	"hive/internal/summarize"
	"hive/internal/tensor"
	"hive/internal/textindex"
)

// Re-exported domain types: the social layer's entities are the public
// vocabulary of the platform.
type (
	// User is a researcher profile.
	User = social.User
	// Conference is an event edition.
	Conference = social.Conference
	// Session is a technical session.
	Session = social.Session
	// Paper is a published or accepted paper.
	Paper = social.Paper
	// Presentation is uploaded slide/poster content.
	Presentation = social.Presentation
	// Question is a question about an entity.
	Question = social.Question
	// Answer replies to a question.
	Answer = social.Answer
	// Comment is free-form feedback on an entity.
	Comment = social.Comment
	// Workpad is the user's context-defining resource pad.
	Workpad = social.Workpad
	// WorkpadItem is one resource on a workpad.
	WorkpadItem = social.WorkpadItem
	// Collection is an exported, shareable workpad.
	Collection = social.Collection
	// Event is one activity-stream entry.
	Event = social.Event

	// Evidence is one relationship evidence (Figure 2).
	Evidence = core.Evidence
	// Explanation is a full relationship explanation between two users.
	Explanation = core.Explanation
	// PeerRecommendation is a suggested contact with its justification.
	PeerRecommendation = core.PeerRecommendation
	// SessionSuggestion is a scored session suggestion.
	SessionSuggestion = core.SessionSuggestion
	// ResourceRecommendation is a suggested document.
	ResourceRecommendation = core.ResourceRecommendation
	// SearchResult is a scored document hit.
	SearchResult = core.SearchResult
	// Snippet is a context-extracted document fragment.
	Snippet = textindex.Snippet
	// Keyphrase is an extracted key concept.
	Keyphrase = textindex.Keyphrase
	// Summary is a size-constrained update digest.
	Summary = summarize.Summary
	// ChangeResult reports activity change detection for one epoch.
	ChangeResult = tensor.StreamResult
)

// Workpad item kinds.
const (
	ItemUser         = social.ItemUser
	ItemPaper        = social.ItemPaper
	ItemPresentation = social.ItemPresentation
	ItemSession      = social.ItemSession
	ItemQuestion     = social.ItemQuestion
	ItemCollection   = social.ItemCollection
)

// Document namespaces used in search results and previews.
const (
	DocPaper        = core.DocPaper
	DocPresentation = core.DocPresentation
	DocQuestion     = core.DocQuestion
)

// Options configures Open.
type Options struct {
	// Dir is the storage directory; empty means in-memory (non-durable).
	Dir string
	// Clock overrides the time source (tests, replay). Nil = wall clock.
	Clock func() time.Time
	// Workers bounds the parallelism of engine rebuilds (the number of
	// derivation stages built concurrently). Zero means GOMAXPROCS.
	Workers int
}

// Platform is the assembled Hive instance.
//
// The knowledge engine is an immutable snapshot published through an
// atomic pointer: readers load the current snapshot without locking,
// rebuilds happen in the background (layer derivation fanned out across
// workers) and swap the pointer only when the replacement is complete.
// Queries therefore never observe a half-built engine, and reads keep
// being served from the old snapshot for the entire rebuild.
type Platform struct {
	store   *social.Store
	workers int

	current atomic.Pointer[core.Engine] // serving snapshot (nil until first build)
	dirty   atomic.Bool                 // store mutated since the serving snapshot was built
	gen     atomic.Uint64               // snapshot generation, bumped on every swap
	lastErr atomic.Pointer[refreshErr]  // outcome of the most recent rebuild

	flightMu sync.Mutex // guards flight and closed
	flight   *refreshFlight
	closed   bool

	autoMu   sync.Mutex // guards autoStop
	autoStop chan struct{}
	autoDone chan struct{}
}

// refreshFlight coalesces concurrent Refresh calls into one rebuild.
type refreshFlight struct {
	done chan struct{}
	err  error
}

// refreshErr boxes a rebuild outcome for atomic storage (nil err on
// success).
type refreshErr struct{ err error }

// Open creates or opens a platform.
func Open(opts Options) (*Platform, error) {
	st, err := social.Open(opts.Dir, social.Clock(opts.Clock))
	if err != nil {
		return nil, err
	}
	p := &Platform{store: st, workers: opts.Workers}
	p.dirty.Store(true)
	// Every store write marks the serving snapshot stale — including
	// writes that bypass the Platform wrappers and hit Store() directly.
	st.OnMutate(p.invalidate)
	return p, nil
}

// ErrClosed is returned by refresh operations after Close.
var ErrClosed = errors.New("hive: platform closed")

// Close stops auto-refresh, waits for any in-flight rebuild and
// releases the underlying storage. It is a quiescence point: once the
// closed mark is set no new rebuild can start, so after Close returns
// nothing reads the store anymore.
func (p *Platform) Close() error {
	p.StopAutoRefresh()
	p.flightMu.Lock()
	p.closed = true
	f := p.flight
	p.flightMu.Unlock()
	if f != nil {
		<-f.done
	}
	return p.store.Close()
}

// Store exposes the raw social store for advanced callers.
func (p *Platform) Store() *social.Store { return p.store }

// Refresh rebuilds the knowledge engine from current data in the
// calling goroutine and atomically swaps it in. Readers are never
// blocked: they keep resolving the previous snapshot until the swap.
// Concurrent Refresh calls coalesce into a single rebuild (all callers
// wait for it and share its result).
func (p *Platform) Refresh() error {
	f, started, err := p.beginFlight()
	if err != nil {
		return err
	}
	if !started {
		<-f.done
		return f.err
	}
	return p.runFlight(f)
}

// RefreshAsync kicks a background rebuild unless one is already in
// flight. It returns immediately; the new snapshot becomes visible
// atomically when the rebuild completes. The flight is registered
// before returning, so a subsequent Close waits for it.
func (p *Platform) RefreshAsync() {
	f, started, err := p.beginFlight()
	if err == nil && started {
		go func() { _ = p.runFlight(f) }()
	}
}

// beginFlight joins the in-flight rebuild or registers a new one.
// started reports ownership: the caller must run the build via
// runFlight; otherwise it may wait on f.done and read f.err. After
// Close it returns ErrClosed and no flight.
func (p *Platform) beginFlight() (f *refreshFlight, started bool, err error) {
	p.flightMu.Lock()
	defer p.flightMu.Unlock()
	if p.closed {
		return nil, false, ErrClosed
	}
	if p.flight != nil {
		return p.flight, false, nil
	}
	f = &refreshFlight{done: make(chan struct{})}
	p.flight = f
	return f, true, nil
}

// runFlight executes the owned rebuild and releases its waiters.
func (p *Platform) runFlight(f *refreshFlight) error {
	f.err = p.rebuild()
	p.flightMu.Lock()
	p.flight = nil
	p.flightMu.Unlock()
	close(f.done)
	return f.err
}

// rebuild performs one snapshot build + swap. Clearing dirty *before*
// reading the store means a write racing the build leaves the platform
// dirty again, so the next refresh picks it up.
func (p *Platform) rebuild() error {
	p.dirty.Store(false)
	eng, err := (&core.Builder{Store: p.store, Workers: p.workers}).Build()
	p.lastErr.Store(&refreshErr{err: err})
	if err != nil {
		p.dirty.Store(true) // the failed build consumed the dirty mark
		return err
	}
	p.current.Store(eng)
	p.gen.Add(1)
	return nil
}

// LastRefreshError returns the error of the most recent rebuild, or
// nil if it succeeded (or none ran yet). Background rebuilds
// (RefreshAsync, AutoRefresh) have no caller to hand their error to;
// this — surfaced in the server's healthz — makes a persistently
// failing refresh observable instead of silently leaving the snapshot
// stale.
func (p *Platform) LastRefreshError() error {
	if box := p.lastErr.Load(); box != nil {
		return box.err
	}
	return nil
}

// Engine returns a fresh engine snapshot, rebuilding first if data
// changed since the last build (read-your-writes for library callers).
// Serving paths that prefer availability over freshness should use
// Snapshot instead.
func (p *Platform) Engine() (*core.Engine, error) {
	if p.dirty.Load() || p.current.Load() == nil {
		if err := p.Refresh(); err != nil {
			return nil, err
		}
		// That Refresh may have joined a rebuild that started before
		// this caller's latest write (leaving dirty set). Any rebuild
		// started from here on necessarily observes the write, so one
		// more pass restores read-your-writes.
		if p.dirty.Load() {
			if err := p.Refresh(); err != nil {
				return nil, err
			}
		}
	}
	return p.current.Load(), nil
}

// Snapshot returns the currently serving engine snapshot without ever
// blocking on a rebuild. It is nil until the first build completes and
// may be stale (check Stale); it is always fully built.
func (p *Platform) Snapshot() *core.Engine { return p.current.Load() }

// Stale reports whether the store changed since the serving snapshot
// was built.
func (p *Platform) Stale() bool { return p.dirty.Load() }

// Generation returns the number of snapshot swaps so far.
func (p *Platform) Generation() uint64 { return p.gen.Load() }

// AutoRefresh starts a background loop that rebuilds the engine every
// interval while the snapshot is stale, keeping snapshot age bounded
// without any rebuild cost on the read path. It replaces a previously
// started loop; a non-positive interval just stops the current loop
// (auto-refresh disabled). Stop it with StopAutoRefresh (Close does
// too).
func (p *Platform) AutoRefresh(interval time.Duration) {
	if interval <= 0 {
		p.StopAutoRefresh()
		return
	}
	// A loop started after Close would have nothing to stop it and
	// would tick against a closed store forever.
	p.flightMu.Lock()
	closed := p.closed
	p.flightMu.Unlock()
	if closed {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	// Atomically swap the new loop in while taking ownership of the
	// old one, so concurrent AutoRefresh calls each stop exactly the
	// loop they displaced and none leaks.
	p.autoMu.Lock()
	prevStop, prevDone := p.autoStop, p.autoDone
	p.autoStop, p.autoDone = stop, done
	p.autoMu.Unlock()
	if prevStop != nil {
		close(prevStop)
		<-prevDone
	}
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if p.dirty.Load() {
					_ = p.Refresh()
				}
			}
		}
	}()
}

// StopAutoRefresh stops the AutoRefresh loop, if running, and waits for
// it to exit.
func (p *Platform) StopAutoRefresh() {
	p.autoMu.Lock()
	stop, done := p.autoStop, p.autoDone
	p.autoStop, p.autoDone = nil, nil
	p.autoMu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

func (p *Platform) invalidate() { p.dirty.Store(true) }

// Additional re-exported service types.
type (
	// HistoryEntry is one matched personal-activity record.
	HistoryEntry = core.HistoryEntry
	// ResourceEvidence explains a user-resource relationship.
	ResourceEvidence = core.ResourceEvidence
	// KnowledgePath is a ranked weighted path in the RDF knowledge base.
	KnowledgePath = rdf.RankedPath
)
