package hive

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"hive/internal/social"
	"hive/internal/workload"
)

func testClock() func() time.Time {
	t := time.Unix(1363000000, 0)
	return func() time.Time {
		t = t.Add(time.Second)
		return t
	}
}

func openTest(t *testing.T) *Platform {
	t.Helper()
	p, err := Open(Options{Clock: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestOpenCloseInMemory(t *testing.T) {
	p := openTest(t)
	if err := p.RegisterUser(User{ID: "u", Name: "U"}); err != nil {
		t.Fatal(err)
	}
	u, err := p.GetUser("u")
	if err != nil || u.Name != "U" {
		t.Fatalf("GetUser = %+v, %v", u, err)
	}
}

func TestDurableAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	p, err := Open(Options{Dir: dir, Clock: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RegisterUser(User{ID: "u", Name: "U"}); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2, err := Open(Options{Dir: dir, Clock: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if _, err := p2.GetUser("u"); err != nil {
		t.Fatalf("user lost across reopen: %v", err)
	}
}

// Regression: reopening a durable platform must resume the change-event
// sequence from the journal — previously replay restored entities but
// restarted ChangeSeq at 0, so delta watermarks and journal offsets
// disagreed with persisted state after a restart.
func TestReopenResumesChangeSeq(t *testing.T) {
	dir := t.TempDir()
	p, err := Open(Options{Dir: dir, Clock: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RegisterUser(User{ID: "a", Name: "A", Interests: []string{"graphs"}}); err != nil {
		t.Fatal(err)
	}
	if err := p.RegisterUser(User{ID: "b", Name: "B", Interests: []string{"graphs"}}); err != nil {
		t.Fatal(err)
	}
	seq := p.Store().ChangeSeq()
	if seq == 0 {
		t.Fatal("ChangeSeq = 0 after writes")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := Open(Options{Dir: dir, Clock: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.Store().ChangeSeq(); got != seq {
		t.Fatalf("reopened ChangeSeq = %d, want %d", got, seq)
	}
	// A full build takes a watermark at the restored sequence; a write
	// after it must land *above* the watermark and flow through the
	// delta path into the serving snapshot.
	if err := p2.Refresh(); err != nil {
		t.Fatal(err)
	}
	if err := p2.PublishPaper(Paper{ID: "p1", Title: "Resumed sequence numbers",
		Abstract: "Watermarks must agree.", Authors: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	if got := p2.Store().ChangeSeq(); got <= seq {
		t.Fatalf("post-reopen write got seq %d, want > %d", got, seq)
	}
	res, err := p2.Search("resumed watermarks", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("post-reopen write not visible to search (delta watermark disagreement)")
	}
}

func TestEngineLazyRebuildAfterMutation(t *testing.T) {
	p := openTest(t)
	if err := p.RegisterUser(User{ID: "a", Name: "A", Interests: []string{"graphs"}}); err != nil {
		t.Fatal(err)
	}
	if err := p.RegisterUser(User{ID: "b", Name: "B", Interests: []string{"graphs"}}); err != nil {
		t.Fatal(err)
	}
	ex, err := p.Explain("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	before := len(ex.Evidences)

	// A mutation (follow) must be reflected after the lazy rebuild.
	if err := p.Follow("a", "b"); err != nil {
		t.Fatal(err)
	}
	ex2, err := p.Explain("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(ex2.Evidences) <= before {
		t.Fatalf("engine did not pick up the new follow: before=%d after=%d",
			before, len(ex2.Evidences))
	}
}

func TestEndToEndWorkloadServices(t *testing.T) {
	p := openTest(t)
	ds := workload.Generate(workload.Config{Seed: 3, Users: 32})
	if err := ds.Load(p.Store()); err != nil {
		t.Fatal(err)
	}
	if err := p.Refresh(); err != nil {
		t.Fatal(err)
	}
	uid := p.Users()[0]

	if recs, err := p.RecommendPeers(uid, 5); err != nil || len(recs) == 0 {
		t.Fatalf("RecommendPeers = %v, %v", recs, err)
	}
	if res, err := p.Search("graph partitioning", 5); err != nil || len(res) == 0 {
		t.Fatalf("Search = %v, %v", res, err)
	}
	if res, err := p.SearchWithContext(uid, "graph partitioning", 5); err != nil || len(res) == 0 {
		t.Fatalf("SearchWithContext = %v, %v", res, err)
	}
	if comms, err := p.Communities(); err != nil || len(comms) == 0 {
		t.Fatalf("Communities = %v, %v", comms, err)
	}
	if _, err := p.MonitorActivity(50); err != nil {
		t.Fatalf("MonitorActivity: %v", err)
	}
	if _, err := p.UpdateDigest(uid, 5); err != nil {
		t.Fatalf("UpdateDigest: %v", err)
	}
	if sugg, err := p.SuggestSessions(uid, p.Store().Conferences()[0], 3); err != nil {
		t.Fatalf("SuggestSessions = %v, %v", sugg, err)
	}
}

func TestWorkpadDrivesContext(t *testing.T) {
	p := openTest(t)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(p.RegisterUser(User{ID: "u", Name: "U"}))
	must(p.RegisterUser(User{ID: "author", Name: "A"}))
	must(p.CreateConference(Conference{ID: "c", Name: "C"}))
	must(p.CreateSession(Session{ID: "s", ConferenceID: "c", Title: "Tensor methods"}))
	must(p.PublishPaper(Paper{ID: "p-tensor", Title: "Tensor stream sketching",
		Abstract: "Compressed sensing over tensor streams.", Authors: []string{"author"}}))
	must(p.PublishPaper(Paper{ID: "p-sql", Title: "Join ordering in SQL engines",
		Abstract: "Query optimization with dynamic programming.", Authors: []string{"author"}}))
	must(p.CreateWorkpad(Workpad{ID: "w", Owner: "u", Name: "tensors"}))
	must(p.AddToWorkpad("w", WorkpadItem{Kind: ItemPaper, Ref: "p-tensor"}))
	must(p.ActivateWorkpad("u", "w"))

	recs, err := p.RecommendResources("u", 1, true)
	must(err)
	if len(recs) == 0 || recs[0].DocID != DocPaper+"p-sql" {
		// p-tensor itself is on the workpad; the context should rank the
		// tensor paper's content highest among others — but p-tensor is
		// not owned by u, so it may legitimately be recommended first.
		found := false
		for _, r := range recs {
			if r.DocID == DocPaper+"p-tensor" {
				found = true
			}
		}
		if !found && len(recs) > 0 && recs[0].DocID == DocPaper+"p-sql" {
			t.Fatalf("context ignored: %v", recs)
		}
	}
}

func TestCollectionShareFlow(t *testing.T) {
	p := openTest(t)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(p.RegisterUser(User{ID: "a", Name: "A"}))
	must(p.RegisterUser(User{ID: "b", Name: "B"}))
	must(p.CreateWorkpad(Workpad{ID: "w", Owner: "a", Name: "shared",
		Items: []WorkpadItem{{Kind: ItemUser, Ref: "b"}}}))
	col, err := p.ExportCollection("w", "col")
	must(err)
	if col.Owner != "a" {
		t.Fatalf("collection = %+v", col)
	}
	w2, err := p.ImportCollection("col", "b", "w-b")
	must(err)
	if w2.Owner != "b" || len(w2.Items) != 1 {
		t.Fatalf("imported = %+v", w2)
	}
	act, err := p.ActiveWorkpad("b")
	must(err)
	if act.ID != "w-b" {
		t.Fatalf("active = %+v", act)
	}
}

func TestErrorsSurfaceFromStore(t *testing.T) {
	p := openTest(t)
	if err := p.CheckIn("missing", "nobody"); !errors.Is(err, social.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if err := p.Connect("x", "x"); !errors.Is(err, social.ErrInvalid) {
		t.Fatalf("err = %v", err)
	}
}

func TestHashtagBroadcast(t *testing.T) {
	p := openTest(t)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(p.RegisterUser(User{ID: "u", Name: "U"}))
	must(p.CreateConference(Conference{ID: "c", Name: "C"}))
	must(p.CreateSession(Session{ID: "s", ConferenceID: "c", Title: "T", Hashtag: "#tag"}))
	must(p.CheckIn("s", "u"))
	evs := p.EventsByTag("#tag")
	if len(evs) != 1 || evs[0].Verb != "checkin" {
		t.Fatalf("tag events = %+v", evs)
	}
}

// TestPlatformWrapperSurface exercises every knowledge-service wrapper
// once against the scenario world, so API regressions surface here.
func TestPlatformWrapperSurface(t *testing.T) {
	p := openTest(t)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(p.RegisterUser(User{ID: "zach", Name: "Zach", Interests: []string{"graphs"}}))
	must(p.RegisterUser(User{ID: "ann", Name: "Ann", Interests: []string{"graphs"}}))
	must(p.CreateConference(Conference{ID: "c", Name: "C"}))
	must(p.CreateSession(Session{ID: "s", ConferenceID: "c", Title: "Graph processing", Hashtag: "#g"}))
	must(p.PublishPaper(Paper{ID: "p1", Title: "Graphs at scale",
		Abstract: "Processing large graphs on clusters with partitioning.",
		Authors:  []string{"ann"}, ConferenceID: "c", SessionID: "s"}))
	// Slides reuse the paper's abstract text (the usual case), so the
	// overlap detector has shared shingles to find.
	must(p.UploadPresentation(Presentation{ID: "pr1", PaperID: "p1", Owner: "ann",
		Text: "Processing large graphs on clusters with partitioning. Communication dominates runtime."}))
	must(p.CheckIn("s", "zach"))
	must(p.Ask(Question{ID: "q1", Author: "zach", Target: "p1", Text: "How does it scale?"}))
	must(p.AnswerQuestion(Answer{ID: "a1", QuestionID: "q1", Author: "ann", Text: "Linearly."}))
	must(p.PostComment(Comment{ID: "cm1", Author: "zach", Target: "s", Text: "Nice session"}))
	must(p.LogBrowse("zach", "p1"))
	must(p.Follow("zach", "ann"))
	must(p.Unfollow("zach", "ann"))
	must(p.Follow("zach", "ann"))

	if got := p.Attendees("s"); len(got) != 1 || got[0] != "zach" {
		t.Fatalf("Attendees = %v", got)
	}
	if got := p.QuestionsAbout("p1"); len(got) != 1 {
		t.Fatalf("QuestionsAbout = %v", got)
	}
	if got := p.AnswersTo("q1"); len(got) != 1 {
		t.Fatalf("AnswersTo = %v", got)
	}
	if !p.Connected("zach", "ann") {
		if err := p.Connect("zach", "ann"); err != nil {
			t.Fatal(err)
		}
	}
	if kps, err := p.Annotate(DocPaper+"p1", 3); err != nil || len(kps) == 0 {
		t.Fatalf("Annotate = %v, %v", kps, err)
	}
	if comm, err := p.CommunityOf("zach"); err != nil || len(comm) == 0 {
		t.Fatalf("CommunityOf = %v, %v", comm, err)
	}
	if res, cont, err := p.DetectOverlap(DocPresentation+"pr1", DocPaper+"p1"); err != nil || res <= 0 || cont <= 0 {
		t.Fatalf("DetectOverlap = %v %v %v", res, cont, err)
	}
	if hits, err := p.SearchHistory("zach", "checkin", true, 5); err != nil || len(hits) == 0 {
		t.Fatalf("SearchHistory = %v, %v", hits, err)
	}
	if evs, err := p.ExplainResource("ann", "p1"); err != nil || len(evs) == 0 {
		t.Fatalf("ExplainResource = %v, %v", evs, err)
	}
	if paths, err := p.KnowledgePaths("user:ann", "session:s", 2); err != nil || len(paths) == 0 {
		t.Fatalf("KnowledgePaths = %v, %v", paths, err)
	}
	if recs, err := p.RecommendResources("zach", 3, true); err != nil || len(recs) == 0 {
		t.Fatalf("RecommendResources = %v, %v", recs, err)
	}
	if snips, err := p.Preview("zach", DocPresentation+"pr1", 1); err != nil || len(snips) == 0 {
		t.Fatalf("Preview = %v, %v", snips, err)
	}
	if _, err := p.MonitorActivity(3); err != nil {
		t.Fatalf("MonitorActivity: %v", err)
	}
	if sum, err := p.UpdateDigest("ann", 3); err != nil || sum == nil {
		t.Fatalf("UpdateDigest = %v, %v", sum, err)
	}
	if feed := p.Feed("zach", 1); len(feed) > 1 {
		t.Fatalf("Feed limit ignored: %v", feed)
	}
	if evs := p.EventsByTag("#g"); len(evs) == 0 {
		t.Fatal("EventsByTag empty")
	}
}

// TestActivityBurstDetected is the end-to-end SCENT story: a sudden Q&A
// storm on one paper must register as a structural change epoch.
func TestActivityBurstDetected(t *testing.T) {
	p := openTest(t)
	ds := workload.Generate(workload.Config{Seed: 7, Users: 32})
	if err := ds.Load(p.Store()); err != nil {
		t.Fatal(err)
	}
	// The burst comes from a handful of users hammering one paper, which
	// concentrates tensor mass in a few (actor, question, paper) cells —
	// the structural signature SCENT keys on.
	hot := ds.Papers[0].ID
	for i := 0; i < 600; i++ {
		q := Question{
			ID:     fmt.Sprintf("burst%03d", i),
			Author: ds.Users[i%2].ID,
			Target: hot,
			Text:   "burst",
		}
		if err := p.Ask(q); err != nil {
			t.Fatal(err)
		}
	}
	res, err := p.MonitorActivity(50)
	if err != nil {
		t.Fatal(err)
	}
	changed := false
	for _, r := range res {
		if r.Change {
			changed = true
		}
	}
	if !changed {
		t.Fatalf("burst not detected: %+v", res)
	}
}
