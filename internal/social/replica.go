package social

// Replication support: the store's change journal persists every
// delivered ChangeEvent batch together with the raw kv writes that
// produced it, so a follower can (1) bootstrap from a full kv snapshot
// and (2) tail the journal, applying each batch's kv image verbatim —
// its store becomes byte-identical to the leader's — and folding the
// typed events into its serving snapshot through the ordinary delta
// path. Events alone would not suffice: they carry IDs, not entity
// bodies, and consumers refetch from the local store.

import (
	"encoding/json"
	"errors"
	"fmt"

	"hive/internal/journal"
	"hive/internal/kvstore"
)

// Epoch fencing errors. ApplyReplica wraps them with the batch's and
// the store's epochs; callers branch with errors.Is.
var (
	// ErrStaleEpoch rejects a batch from a leadership term older than
	// the store's: a deposed leader kept writing after losing its lease.
	// The batch must be fenced (dropped), never applied — and the node
	// that produced it must not be used as a snapshot source either.
	ErrStaleEpoch = errors.New("social: replica batch from a stale epoch")
	// ErrEpochAhead rejects a batch from a newer leadership term than
	// the store has adopted. Per the compatibility rule a follower at
	// epoch N applies batches at N and re-bootstraps on N+1 — the
	// caller re-syncs from a snapshot, adopting the new epoch there.
	ErrEpochAhead = errors.New("social: replica batch from a newer epoch")
)

// ReplicationBatch is one journaled change batch: the inclusive
// sequence range, the typed events, and the kv-level write image. It is
// both the journal's record payload and the replication wire format
// (aliased by the api package).
//
// Events and kv writes are coalesced per delivery scope; under
// concurrent writers a batch may carry kv writes whose events ride a
// neighboring batch. That is harmless by construction: kv images apply
// verbatim and in order, and events are refetch hints.
//
// Epoch is the leadership term the batch was journaled under — the
// fencing token of the election layer. Followers reject batches whose
// epoch is behind their own (a deposed leader's writes) and re-bootstrap
// on batches ahead of it. Zero (omitted on the wire) marks a batch
// journaled before epochs existed, or by an unmanaged store; such
// batches are always accepted, which keeps pre-epoch journals readable.
type ReplicationBatch struct {
	First  uint64            `json:"first"`
	Last   uint64            `json:"last"`
	Epoch  uint64            `json:"epoch,omitempty"`
	Events []ChangeEvent     `json:"events"`
	Puts   map[string][]byte `json:"puts,omitempty"`
	Dels   []string          `json:"dels,omitempty"`
}

// Journaled reports whether the store has a durable change journal
// (false for in-memory stores, which cannot lead a replica set).
func (s *Store) Journaled() bool { return s.jn != nil }

// JournalError returns the most recent journal-append failure, nil when
// the journal is healthy or absent. A failing journal does not fail
// writes (the kv WAL owns data durability) but it does stall followers,
// so the server surfaces this in healthz.
func (s *Store) JournalError() error {
	s.evMu.Lock()
	defer s.evMu.Unlock()
	return s.jnErr
}

// JournalStats reports the journal's addressable range — oldest
// readable sequence, tail sequence — and its segment count. All zeros
// without a journal.
func (s *Store) JournalStats() (oldest, tail uint64, segments int) {
	if s.jn == nil {
		return 0, 0, 0
	}
	return s.jn.Stats()
}

// CommitIndex returns the cluster commit index persisted beside the
// journal: the highest change sequence a write quorum has acknowledged.
// Zero without a journal (an in-memory store cannot lead) or before any
// quorum write committed.
func (s *Store) CommitIndex() uint64 {
	if s.jn == nil {
		return 0
	}
	return s.jn.CommitIndex()
}

// SetCommitIndex durably advances the cluster commit index. The caller
// must have observed a quorum of follower acknowledgements at or past
// seq (the leader's ack tracker) or be adopting the leader's published
// index (a follower); regressions are ignored, the index is monotone.
func (s *Store) SetCommitIndex(seq uint64) error {
	if s.jn == nil {
		return fmt.Errorf("social: store has no change journal (in-memory store)")
	}
	return s.jn.SetCommitIndex(seq)
}

// ChangesSince reads up to max journaled batches containing events with
// sequence numbers strictly greater than after. It returns
// journal.ErrCompacted when the range was dropped by retention (the
// caller must re-bootstrap from a snapshot) and an empty result when
// the caller is caught up.
func (s *Store) ChangesSince(after uint64, max int) ([]ReplicationBatch, error) {
	if s.jn == nil {
		return nil, fmt.Errorf("social: store has no change journal (in-memory store)")
	}
	recs, err := s.jn.ReadFrom(after, max)
	if err != nil {
		return nil, err
	}
	out := make([]ReplicationBatch, 0, len(recs))
	for _, rec := range recs {
		var rb ReplicationBatch
		if err := json.Unmarshal(rec.Data, &rb); err != nil {
			return nil, fmt.Errorf("social: decode journal batch [%d,%d]: %w", rec.First, rec.Last, err)
		}
		out = append(out, rb)
	}
	return out, nil
}

// WaitChanges blocks until the journal holds sequences greater than
// after or done is closed, reporting whether new data arrived. It is
// the long-poll primitive under the replication feed endpoint.
func (s *Store) WaitChanges(done <-chan struct{}, after uint64) bool {
	if s.jn == nil {
		return false
	}
	return s.jn.WaitFrom(done, after)
}

// SnapshotForReplication captures the sequence watermark and the full
// kv image a follower bootstraps from. The watermark is read *before*
// the scan: writes racing the scan may already be visible in the image,
// and the follower will simply re-apply their batches — re-applying a
// kv image is idempotent and delta consumers refetch state anyway. The
// reverse order could lose events forever.
func (s *Store) SnapshotForReplication() (seq uint64, entries map[string][]byte) {
	seq = s.ChangeSeq()
	entries = make(map[string][]byte)
	s.kv.Scan("", func(k string, v []byte) bool {
		entries[k] = v
		return true
	})
	return seq, entries
}

// ImportReplicaSnapshot atomically replaces the store's contents with a
// leader snapshot and moves the change sequence to its watermark — in
// either direction: an import replaces the world, so the watermark is
// authoritative even when it is lower than the current sequence (the
// re-sync-from-a-regressed-leader path). The local journal (if any) is
// not rewritten; until the sequence passes its tail again, ApplyReplica
// skips local re-journaling, which only degrades chaining.
//
//lint:allow hookcheck snapshot import replaces the whole image quietly; the follower rebuilds its engine from scratch afterwards
func (s *Store) ImportReplicaSnapshot(seq uint64, entries map[string][]byte) error {
	if err := s.kv.ImportSnapshot(entries); err != nil {
		return err
	}
	s.evMu.Lock()
	s.changeSeq = seq
	// Any capture accumulated before the import is now meaningless.
	s.capPuts, s.capDels = nil, nil
	s.evMu.Unlock()
	// The imported counter key (meta/seq) was part of the image; adopt
	// it (in either direction — the image is the world now) so activity
	// sequences continue from it.
	s.mu.Lock()
	s.seq = 0
	if raw, err := s.kv.Get(kSeq); err == nil {
		var n uint64
		if json.Unmarshal(raw, &n) == nil {
			s.seq = n
		}
	}
	s.mu.Unlock()
	return nil
}

// ApplyReplica folds one replicated batch into the store: the kv image
// applies verbatim (quietly — a replica must not re-capture the writes
// for its own outbound record, the original record is appended
// instead), the change sequence fast-forwards to the batch's Last, the
// batch lands in the local journal (chaining and restart-resume), and
// the events are delivered to subscribers so the platform folds them
// into its serving snapshot via the ordinary delta path. Batches at or
// below the current sequence are skipped (reconnect replays).
//
// Epoch fencing happens first: a batch carrying an epoch behind the
// store's fails with ErrStaleEpoch (deposed-leader writes are dropped,
// not applied), one ahead of it fails with ErrEpochAhead (the caller
// re-bootstraps and adopts the new epoch from the snapshot). Epoch-0
// batches and epoch-0 stores are unmanaged and skip the check.
func (s *Store) ApplyReplica(rb ReplicationBatch) error {
	if rb.Last < rb.First || rb.First == 0 {
		return fmt.Errorf("social: invalid replica batch range [%d,%d]", rb.First, rb.Last)
	}
	s.evMu.Lock()
	if rb.Epoch != 0 && s.epoch != 0 && rb.Epoch != s.epoch {
		cur := s.epoch
		s.evMu.Unlock()
		if rb.Epoch < cur {
			return fmt.Errorf("%w: batch [%d,%d] at epoch %d, store at epoch %d", ErrStaleEpoch, rb.First, rb.Last, rb.Epoch, cur)
		}
		return fmt.Errorf("%w: batch [%d,%d] at epoch %d, store at epoch %d", ErrEpochAhead, rb.First, rb.Last, rb.Epoch, cur)
	}
	if rb.Last <= s.changeSeq {
		s.evMu.Unlock()
		return nil // already applied
	}
	s.evMu.Unlock()

	b := kvstore.NewBatch()
	for k, v := range rb.Puts {
		b.Put(k, v)
	}
	for _, k := range rb.Dels {
		b.Delete(k)
	}
	if b.Len() > 0 {
		if err := s.kv.ApplyQuiet(b); err != nil {
			return err
		}
	}
	// The imported image may carry a newer activity counter.
	s.mu.Lock()
	if raw, err := s.kv.Get(kSeq); err == nil {
		var n uint64
		if json.Unmarshal(raw, &n) == nil && n > s.seq {
			s.seq = n
		}
	}
	s.mu.Unlock()

	s.evMu.Lock()
	s.changeSeq = rb.Last
	if rb.Epoch > s.epoch {
		// An unmanaged store adopts the leader's epoch from its feed.
		s.epoch = rb.Epoch
	}
	if s.jn != nil && s.jn.Tail() < rb.First {
		data, err := json.Marshal(rb)
		if err == nil {
			//lint:allow hookcheck appending under evMu keeps journal order identical to change-sequence order
			err = s.jn.Append(journal.Record{First: rb.First, Last: rb.Last, Data: data})
		}
		if err != nil {
			s.jnErr = fmt.Errorf("social: journal replica batch: %w", err)
		} else {
			s.jnErr = nil
		}
	}
	s.evMu.Unlock()

	s.deliver(rb.Events)
	return nil
}
