// Package api is the versioned wire contract of the Hive HTTP API
// (/api/v1): the typed request and response DTOs, the structured error
// envelope with stable machine-readable codes, cursor-based pagination,
// and the batch-ingest format. Server, client SDK, benchmarks and tests
// all share these types, so the contract is exercised end-to-end and a
// change to the wire shape is a change to this package.
//
// Entity DTOs alias the platform's domain types: the JSON tags on those
// types *are* the wire schema, and aliasing keeps a single source of
// truth between storage and transport.
package api

import (
	"errors"
	"fmt"
)

// Stable machine-readable error codes. Codes are part of the v1
// contract: clients may switch on them, so existing values never change
// meaning (new codes may be added).
const (
	// CodeNotFound: a referenced entity does not exist (HTTP 404).
	CodeNotFound = "not_found"
	// CodeInvalidArgument: a well-formed request with bad field values —
	// empty IDs, dangling references, malformed cursors (HTTP 400).
	CodeInvalidArgument = "invalid_argument"
	// CodeBadRequest: the request body could not be parsed (HTTP 400).
	CodeBadRequest = "bad_request"
	// CodePayloadTooLarge: the request body exceeds the server's size
	// cap (HTTP 413).
	CodePayloadTooLarge = "payload_too_large"
	// CodeTimeout: the server gave up on the request (HTTP 503).
	CodeTimeout = "timeout"
	// CodeOverloaded: the in-flight request limit was hit (HTTP 503).
	CodeOverloaded = "overloaded"
	// CodeRateLimited: the request-rate limit was hit (HTTP 429).
	CodeRateLimited = "rate_limited"
	// CodeNotLeader: a write was sent to a replication follower; the
	// error's details carry the leader's URL under "leader" and the
	// node's leadership term under "epoch" (HTTP 409). Clients follow
	// the hint; an empty leader means the election is unresolved —
	// re-resolve via GET /cluster and retry.
	CodeNotLeader = "not_leader"
	// CodeCompacted: a replication read asked for journal sequences
	// dropped by retention; the follower must re-bootstrap from the
	// snapshot endpoint (HTTP 410).
	CodeCompacted = "compacted"
	// CodeQuorumUnavailable: a quorum-acknowledged write could not
	// collect enough follower acks within the leader's ack timeout. The
	// write is journaled on the leader and replicates when followers
	// return — durability is unproven, not rolled back. Details carry the
	// waited-on change sequence under "seq", the acks collected under
	// "acked" and the configured quorum under "needed" (HTTP 503).
	CodeQuorumUnavailable = "quorum_unavailable"
	// CodeStaleEpoch: a replication request asserted a newer leadership
	// epoch than this node has adopted — the node is (or is about to
	// be) fenced off as a deposed leader. The caller must not apply
	// anything it serves; re-resolve the leader instead. Details carry
	// the node's term under "epoch" and the asserted term under
	// "requested_epoch" (HTTP 409).
	CodeStaleEpoch = "stale_epoch"
	// CodeWrongShard: a write declared an owner shard (X-Hive-Shard)
	// that does not match the shard the owning user hashes to on this
	// deployment — the client's shard map is stale. Details carry the
	// correct shard under "expected_shard", the deployment's shard count
	// under "shard_count" and the routing owner under "owner" (HTTP
	// 409). Clients refresh the shard map from GET /cluster and retry.
	CodeWrongShard = "wrong_shard"
	// CodeInternal: unclassified server failure (HTTP 500).
	CodeInternal = "internal"
)

// Error is the wire error: a stable code, a human-readable message, and
// optional structured details. It implements error so the client SDK
// can return it directly.
type Error struct {
	Code    string         `json:"code"`
	Message string         `json:"message"`
	Details map[string]any `json:"details,omitempty"`

	// HTTPStatus is the HTTP status the error arrived with. Set by the
	// client SDK; not serialized.
	HTTPStatus int `json:"-"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e == nil {
		return "<nil>"
	}
	return fmt.Sprintf("api: %s: %s", e.Code, e.Message)
}

// ErrorResponse is the error envelope every non-2xx v1 response carries:
//
//	{"error": {"code": "not_found", "message": "..."}}
type ErrorResponse struct {
	Error *Error `json:"error"`
	// TraceID is the request's X-Hive-Trace-Id, echoed in the envelope
	// so a failed call is findable in the server's access log and
	// debug/traces ring without header access (empty on responses
	// written outside a traced request, e.g. the static timeout body).
	TraceID string `json:"trace_id,omitempty"`
}

// IsCode reports whether err is an *Error with the given code.
func IsCode(err error, code string) bool {
	var ae *Error
	return errors.As(err, &ae) && ae.Code == code
}
