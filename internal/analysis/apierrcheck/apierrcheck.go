// Package apierrcheck keeps the SDK's typed-error contract closed: the
// api package declares the full registry of machine-readable error
// codes (api.Code* constants), and clients dispatch on them with
// api.IsCode. A handler that writes an envelope with an ad-hoc string
// invents a code no client knows, silently widening the wire contract.
//
// The checker flags three shapes: api.Error composite literals whose
// Code field is a string literal or a constant declared outside the
// registry, writeError call sites passing such a code, and IsCode
// checks against such a code. Dynamic values (variables, struct
// fields, decoded wire data) pass — provenance of runtime strings is
// out of scope.
package apierrcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hive/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "apierrcheck",
	Doc:  "flag error envelopes and code checks using codes not declared as api.Code* constants",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CompositeLit:
				checkEnvelope(pass, e)
			case *ast.CallExpr:
				checkCall(pass, e)
			}
			return true
		})
	}
	return nil
}

// checkEnvelope validates the Code field of api.Error literals.
func checkEnvelope(pass *analysis.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || !analysis.IsNamed(tv.Type, "api", "Error") {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Code" {
			checkCodeExpr(pass, kv.Value, "api.Error literal")
		}
	}
}

// checkCall validates code arguments of the two registry-sensitive
// call shapes: writeError(w, r, status, code, msg) in the server, and
// api.IsCode(err, code) anywhere.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	switch analysis.CalleeName(call) {
	case "writeError":
		// writeError(w, r, status, code, msg): the code is the fourth arg.
		if len(call.Args) >= 5 {
			checkCodeExpr(pass, call.Args[3], "writeError")
		}
	case "IsCode":
		if fnObj(pass, call) != nil && analysis.PkgPathHasSuffix(fnObj(pass, call).Pkg(), "api") &&
			len(call.Args) >= 2 {
			checkCodeExpr(pass, call.Args[1], "IsCode")
		}
	}
}

// fnObj resolves the called function's object, or nil.
func fnObj(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fn]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fn.Sel]
	}
	return nil
}

// checkCodeExpr flags expr when it is provably outside the registry: a
// raw string literal, or a named constant that is not an api.Code*
// declaration.
func checkCodeExpr(pass *analysis.Pass, expr ast.Expr, site string) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.BasicLit:
		if e.Kind == token.STRING {
			pass.Reportf(e.Pos(),
				"%s uses a raw string as an error code: declare it as an api.Code* constant (closed registry)", site)
		}
	case *ast.Ident, *ast.SelectorExpr:
		obj := identObj(pass, e)
		c, ok := obj.(*types.Const)
		if !ok {
			return // dynamic value: provenance not tracked
		}
		if c.Pkg() != nil && analysis.PkgPathHasSuffix(c.Pkg(), "api") && strings.HasPrefix(c.Name(), "Code") {
			return
		}
		pass.Reportf(expr.Pos(),
			"%s uses constant %s, which is not declared in the api.Code* registry", site, c.Name())
	}
}

func identObj(pass *analysis.Pass, e ast.Expr) types.Object {
	switch v := e.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[v]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[v.Sel]
	}
	return nil
}
