// Package epochcheck enforces the replication epoch-fencing invariant
// from PR 6: every path that applies the *contents* of a
// ReplicationBatch (its Events, Puts or Dels) must also look at the
// batch Epoch — otherwise a deposed leader's writes survive a
// failover — and the errors carrying the fencing verdict
// (ErrStaleEpoch/ErrEpochAhead out of ApplyReplica and friends) must
// never be discarded.
//
// It also guards the quorum-write invariant from PR 8: the cluster
// commit index vouches for quorum-acknowledged durability, so a
// SetCommitIndex call on the store must be ordered after a quorum ack
// check — the function must consult the ack table (an ack/quorum-named
// identifier) before the update. The one legitimate exception, a
// follower adopting the index its leader already proved, carries an
// explicit //lint:allow suppression.
package epochcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hive/internal/analysis"
)

// batchType is the fenced record type. Both social.ReplicationBatch
// and its api wire mirror carry the invariant, so the match is by type
// name alone.
const batchType = "ReplicationBatch"

// applyFields are the batch fields whose use means "this function is
// applying the batch". First/Last are cursor bookkeeping and exempt.
var applyFields = map[string]bool{"Events": true, "Puts": true, "Dels": true}

// fencedCalls are the social.Store methods whose error result carries
// the fencing verdict.
var fencedCalls = map[string]bool{"ApplyReplica": true, "ImportReplicaSnapshot": true, "SetEpoch": true}

var Analyzer = &analysis.Analyzer{
	Name: "epochcheck",
	Doc: "flag ReplicationBatch apply paths that never compare the batch Epoch, " +
		"call sites discarding errors from ApplyReplica/fencing paths, " +
		"and commit-index updates not ordered after a quorum ack check",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkApplyWithoutEpoch(pass, fd)
			checkCommitAfterAck(pass, fd)
		}
		checkDiscardedErrors(pass, file)
	}
	return nil
}

// checkApplyWithoutEpoch reports a function that touches a batch's
// apply fields without ever referencing a batch Epoch (as a field read
// or a composite-literal key — stamping the epoch at construction
// counts as handling it).
func checkApplyWithoutEpoch(pass *analysis.Pass, fd *ast.FuncDecl) {
	var firstApply token.Pos
	var firstField string
	seesEpoch := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			if !isBatch(pass.TypesInfo, e.X) {
				return true
			}
			switch {
			case applyFields[e.Sel.Name]:
				if !firstApply.IsValid() {
					firstApply = e.Pos()
					firstField = e.Sel.Name
				}
			case e.Sel.Name == "Epoch":
				seesEpoch = true
			}
		case *ast.CompositeLit:
			tv, ok := pass.TypesInfo.Types[e]
			if !ok || !analysis.IsNamed(tv.Type, "", batchType) {
				return true
			}
			for _, elt := range e.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Epoch" {
						seesEpoch = true
					}
				}
			}
		}
		return true
	})
	if firstApply.IsValid() && !seesEpoch {
		pass.Reportf(firstApply,
			"%s applies ReplicationBatch.%s without comparing the batch Epoch (epoch fencing)",
			fd.Name.Name, firstField)
	}
}

// checkCommitAfterAck reports SetCommitIndex calls on the social store
// that are not ordered after a quorum ack check: somewhere earlier in
// the same function an ack- or quorum-named identifier must have been
// consulted (the ack table, the k-th-acked computation, the configured
// quorum). Without that ordering the commit index could advance on a
// write no quorum ever confirmed — the durability promise would lie.
// Identifier matching is by camel-case word, so followerAck and
// kthAckedLocked count while backoff does not.
func checkCommitAfterAck(pass *analysis.Pass, fd *ast.FuncDecl) {
	var ackSeen token.Pos // earliest ack/quorum reference
	var commits []*ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.Ident:
			if (!ackSeen.IsValid() || e.Pos() < ackSeen) && mentionsAck(e.Name) {
				ackSeen = e.Pos()
			}
		case *ast.CallExpr:
			sel, ok := e.Fun.(*ast.SelectorExpr)
			if ok && sel.Sel.Name == "SetCommitIndex" &&
				analysis.IsNamed(typeOf(pass, sel.X), "internal/social", "Store") {
				commits = append(commits, e)
			}
		}
		return true
	})
	for _, call := range commits {
		if !ackSeen.IsValid() || ackSeen > call.Pos() {
			pass.Reportf(call.Pos(),
				"%s calls SetCommitIndex without a preceding quorum ack check: the commit index may only advance on quorum-acknowledged sequences",
				fd.Name.Name)
		}
	}
}

// mentionsAck reports whether a camel-case word of name is ack/acked/
// acks or quorum — the vocabulary of the ack table and its bounds.
func mentionsAck(name string) bool {
	for _, w := range camelWords(name) {
		switch w {
		case "ack", "acked", "acks", "quorum":
			return true
		}
	}
	return false
}

// camelWords splits an identifier into lower-cased camel-case words
// ("kthAckedLocked" -> kth, acked, locked).
func camelWords(s string) []string {
	var words []string
	start := 0
	for i := 1; i <= len(s); i++ {
		if i == len(s) || (s[i] >= 'A' && s[i] <= 'Z') {
			w := strings.ToLower(s[start:i])
			if w != "" {
				words = append(words, w)
			}
			start = i
		}
	}
	return words
}

// isBatch reports whether expr has (a pointer to) the ReplicationBatch
// type.
func isBatch(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	return ok && analysis.IsNamed(tv.Type, "", batchType)
}

// checkDiscardedErrors reports fenced-method calls whose error result
// is dropped: bare statement calls, go/defer calls, and assignments to
// the blank identifier.
func checkDiscardedErrors(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				reportIfFenced(pass, call)
			}
		case *ast.GoStmt:
			reportIfFenced(pass, st.Call)
		case *ast.DeferStmt:
			reportIfFenced(pass, st.Call)
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return true
			}
			call, ok := st.Rhs[0].(*ast.CallExpr)
			if !ok || !allBlank(st.Lhs) {
				return true
			}
			reportIfFenced(pass, call)
		}
		return true
	})
}

func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// reportIfFenced flags call if it is a fenced social.Store method
// returning an error whose result the caller is discarding.
func reportIfFenced(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !fencedCalls[sel.Sel.Name] {
		return
	}
	if !analysis.IsNamed(typeOf(pass, sel.X), "internal/social", "Store") {
		return
	}
	sig, ok := typeOf(pass, call.Fun).(*types.Signature)
	if !ok || !returnsError(sig) {
		return
	}
	pass.Reportf(call.Pos(),
		"error from %s is discarded: it may carry ErrStaleEpoch/ErrEpochAhead (epoch fencing)",
		sel.Sel.Name)
}

func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := types.Unalias(res.At(i).Type()).(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return true
		}
	}
	return false
}
