// Package caller exercises the discarded-error arm: results of
// fenced Store calls carry the ErrStaleEpoch/ErrEpochAhead verdict and
// must be consumed.
package caller

import "epochtest/internal/social"

func Drop(s *social.Store, rb social.ReplicationBatch) {
	s.ApplyReplica(rb)                 // want `error from ApplyReplica is discarded`
	_ = s.ApplyReplica(rb)             // want `error from ApplyReplica is discarded`
	go s.ApplyReplica(rb)              // want `error from ApplyReplica is discarded`
	s.ImportReplicaSnapshot(nil)       // want `error from ImportReplicaSnapshot is discarded`
	defer s.ImportReplicaSnapshot(nil) // want `error from ImportReplicaSnapshot is discarded`

	//lint:allow epochcheck reconnect loop retries this batch on the next poll
	s.ApplyReplica(rb)

	if err := s.ApplyReplica(rb); err != nil { // clean: error consumed
		panic(err)
	}
	s.SetEpoch(3) // clean: no error result to drop
}
