package election

// FileLease elects over a shared directory (one per replica set — a
// shared filesystem in deployment, a tempdir in tests and smoke runs).
// The lease is a single JSON file naming the holder, the holder's
// epoch, and an expiry deadline; atomic write-then-rename keeps readers
// from ever observing a torn lease.
//
// Protocol, per tick (TTL/4):
//
//   - lease valid and ours → renew the expiry (same epoch), stay leader.
//   - lease valid and foreign → follow its holder at its epoch.
//   - lease missing or expired → sleep a per-node jittered stagger (so
//     candidates rarely collide), re-check, then claim by writing
//     {self, max(seen epoch, floor)+1, now+TTL}; settle for a fraction
//     of the TTL and re-read — leadership is assumed only if the claim
//     survived. A lost or clobbered claim demotes to follower and
//     retries next tick.
//
// Two candidates racing the same expiry can both believe they won for
// at most one settle window; the epoch fencing in the data path makes
// that window harmless — at equal claims the higher epoch wins
// downstream, and equal epochs cannot be claimed twice because every
// claim re-reads the file first and claims strictly above what it saw.
// The file system is advisory here, exactly like the lease services the
// design follows: correctness never rests on the lease alone.

import (
	"encoding/json"
	"errors"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
	"time"

	"hive/internal/metrics"
)

// Lease churn counters on the process-wide registry: a healthy cluster
// shows renewals climbing steadily and acquisitions near-flat; climbing
// acquisitions mean leadership is thrashing.
var (
	mLeaseAcquisitions = metrics.Default.Counter(metrics.LeaseAcquisitionsTotal,
		"Lease claims that survived the settle window (leadership acquisitions).")
	mLeaseRenewals = metrics.Default.Counter(metrics.LeaseRenewalsTotal,
		"Successful renewals of an already-held lease.")
)

// DefaultLeaseTTL is the lease validity used when LeaseConfig.TTL is
// zero: long enough to ride out scheduling hiccups, short enough that
// failover completes in a few seconds.
const DefaultLeaseTTL = 2 * time.Second

// LeaseConfig configures a FileLease elector.
type LeaseConfig struct {
	// Dir is the shared lease directory; every member of the replica
	// set must point at the same directory.
	Dir string
	// Self is this node's advertised base URL — what the lease names as
	// holder and what followers and redirected clients dial.
	Self string
	// TTL is the lease validity (0 = DefaultLeaseTTL). Renewal runs at
	// TTL/4, so a leader survives three consecutive missed renewals.
	TTL time.Duration
}

// leaseRecord is the on-disk lease format.
type leaseRecord struct {
	Holder  string `json:"holder"`
	Epoch   uint64 `json:"epoch"`
	Expires int64  `json:"expires_unix_nano"`
}

// FileLease is the shared-directory Elector backend.
type FileLease struct {
	cfg  LeaseConfig
	path string

	mu         sync.Mutex
	cur        State
	floor      uint64 // highest epoch observed or claimed; claims go above it
	notify     func(State)
	pauseUntil time.Time // Yield: no renewing or claiming before this instant

	startOnce sync.Once
	stopOnce  sync.Once
	started   bool // set under mu by Start; Stop only waits if the loop ran
	stop      chan struct{}
	done      chan struct{}
}

// NewFileLease validates the config and prepares (but does not start)
// the elector, creating the lease directory if needed.
func NewFileLease(cfg LeaseConfig) (*FileLease, error) {
	if cfg.Dir == "" || cfg.Self == "" {
		return nil, errors.New("election: LeaseConfig needs Dir and Self")
	}
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultLeaseTTL
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	return &FileLease{
		cfg:  cfg,
		path: filepath.Join(cfg.Dir, "leader.lease"),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}, nil
}

// Start implements Elector.
func (f *FileLease) Start(floor uint64, notify func(State)) {
	f.startOnce.Do(func() {
		f.mu.Lock()
		f.floor = floor
		f.notify = notify
		f.started = true
		f.mu.Unlock()
		go f.loop()
	})
}

// State implements Elector.
func (f *FileLease) State() State {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cur
}

// Yield implements Yielder: the caught-up promotion gate decided a peer
// should lead instead. Claiming and renewing pause for one TTL — the
// next step releases a held lease outright — which opens a full claim
// window for the deferred-to peer. The epoch floor is untouched: any
// later claim by this node still goes strictly above everything it has
// seen, so the yielded term can never be reused against a newer one.
func (f *FileLease) Yield() {
	f.mu.Lock()
	f.pauseUntil = time.Now().Add(f.cfg.TTL)
	f.mu.Unlock()
}

// Stop implements Elector: the loop exits and, if this node led, the
// lease is simply left to expire — the same handover path a crash takes.
func (f *FileLease) Stop() {
	f.stopOnce.Do(func() { close(f.stop) })
	f.mu.Lock()
	started := f.started
	f.mu.Unlock()
	if started {
		<-f.done
	}
}

func (f *FileLease) loop() {
	defer close(f.done)
	tick := f.cfg.TTL / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	for {
		st, ok := f.step()
		if !ok {
			return // stopped mid-step
		}
		f.publish(st)
		if !f.sleep(tick) {
			return
		}
	}
}

// step runs one election round and returns the resulting state. ok is
// false when the elector was stopped while waiting inside the round.
func (f *FileLease) step() (State, bool) {
	rec := f.readLease()
	now := time.Now()
	f.mu.Lock()
	paused := now.Before(f.pauseUntil)
	f.mu.Unlock()
	switch {
	case f.validAt(rec, now) && rec.Holder == f.cfg.Self:
		if paused {
			// Yielded while holding the lease: release it instead of
			// renewing, so the peer we deferred to claims immediately
			// rather than waiting out the TTL.
			_ = os.Remove(f.path)
			return State{Role: Follower, Epoch: rec.Epoch, Leader: ""}, true
		}
		// Our lease: renew. A failed renewal write is caught next tick —
		// until then the old expiry still covers us.
		if f.writeLease(leaseRecord{Holder: f.cfg.Self, Epoch: rec.Epoch, Expires: now.Add(f.cfg.TTL).UnixNano()}) == nil {
			mLeaseRenewals.Inc()
		}
		return State{Role: Leader, Epoch: rec.Epoch, Leader: f.cfg.Self}, true
	case f.validAt(rec, now):
		return State{Role: Follower, Epoch: rec.Epoch, Leader: rec.Holder}, true
	}
	if paused {
		// Yielded: sit this round out so another candidate can claim.
		return State{Role: Follower, Epoch: rec.Epoch, Leader: ""}, true
	}

	// Lease missing or expired: claim it. Stagger candidates by a
	// per-node deterministic jitter so concurrent claims are rare, then
	// re-check — someone faster may have claimed during the stagger.
	if !f.sleep(f.stagger()) {
		return State{}, false
	}
	rec = f.readLease()
	now = time.Now()
	if f.validAt(rec, now) {
		if rec.Holder == f.cfg.Self {
			return State{Role: Leader, Epoch: rec.Epoch, Leader: f.cfg.Self}, true
		}
		return State{Role: Follower, Epoch: rec.Epoch, Leader: rec.Holder}, true
	}
	epoch := rec.Epoch
	f.mu.Lock()
	if epoch < f.floor {
		epoch = f.floor
	}
	f.mu.Unlock()
	epoch++
	claim := leaseRecord{Holder: f.cfg.Self, Epoch: epoch, Expires: now.Add(f.cfg.TTL).UnixNano()}
	if err := f.writeLease(claim); err != nil {
		return State{Role: Follower, Epoch: epoch - 1, Leader: ""}, true
	}
	// Settle: if another candidate claimed concurrently, the rename that
	// landed last owns the file. Only a surviving claim confers
	// leadership.
	if !f.sleep(f.settle()) {
		return State{}, false
	}
	got := f.readLease()
	if got.Holder == f.cfg.Self && got.Epoch == epoch {
		mLeaseAcquisitions.Inc()
		return State{Role: Leader, Epoch: epoch, Leader: f.cfg.Self}, true
	}
	if f.validAt(got, time.Now()) {
		return State{Role: Follower, Epoch: got.Epoch, Leader: got.Holder}, true
	}
	// Contested and still unresolved: stand down this round.
	return State{Role: Follower, Epoch: epoch, Leader: ""}, true
}

func (f *FileLease) validAt(rec leaseRecord, now time.Time) bool {
	return rec.Holder != "" && now.UnixNano() < rec.Expires
}

// publish records the round's outcome, raises the epoch floor, and
// notifies on change.
func (f *FileLease) publish(st State) {
	f.mu.Lock()
	changed := st != f.cur
	f.cur = st
	if st.Epoch > f.floor {
		f.floor = st.Epoch
	}
	notify := f.notify
	f.mu.Unlock()
	if changed && notify != nil {
		notify(st)
	}
}

func (f *FileLease) readLease() leaseRecord {
	data, err := os.ReadFile(f.path)
	if err != nil {
		return leaseRecord{}
	}
	var rec leaseRecord
	if json.Unmarshal(data, &rec) != nil {
		return leaseRecord{}
	}
	return rec
}

// writeLease atomically replaces the lease file (temp + rename), so a
// reader never observes a torn record and the last rename wins whole.
func (f *FileLease) writeLease(rec leaseRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(f.cfg.Dir, "lease-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), f.path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// stagger is this node's deterministic claim delay: one of 16 slots
// spread over half the TTL, derived from Self, so a fixed replica set
// claims in a stable order and dueling claims need a hash collision
// plus a photo finish.
func (f *FileLease) stagger() time.Duration {
	h := fnv.New32a()
	h.Write([]byte(f.cfg.Self))
	slot := time.Duration(h.Sum32() % 16)
	return slot * (f.cfg.TTL / 32)
}

// settle is the post-claim verification delay: long enough for a
// racing rename to land, well under a tick.
func (f *FileLease) settle() time.Duration {
	d := f.cfg.TTL / 16
	if d < 2*time.Millisecond {
		d = 2 * time.Millisecond
	}
	return d
}

// sleep waits d unless the elector stops first.
func (f *FileLease) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-f.stop:
		return false
	}
}
