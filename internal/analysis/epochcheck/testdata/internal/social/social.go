// Package social is a stub mirroring the replication surface: the
// ReplicationBatch type, the fencing errors, and the fenced Store
// methods.
package social

import "errors"

var (
	ErrStaleEpoch = errors.New("stale epoch")
	ErrEpochAhead = errors.New("epoch ahead")
)

type ChangeEvent struct{ Seq uint64 }

type ReplicationBatch struct {
	First, Last, Epoch uint64
	Events             []ChangeEvent
	Puts               map[string][]byte
	Dels               []string
}

type Store struct {
	epoch  uint64
	seq    uint64
	commit uint64
	kvs    map[string][]byte
}

// ApplyReplica fences before applying: clean.
func (s *Store) ApplyReplica(rb ReplicationBatch) error {
	if rb.Epoch != 0 && s.epoch != 0 && rb.Epoch != s.epoch {
		if rb.Epoch < s.epoch {
			return ErrStaleEpoch
		}
		return ErrEpochAhead
	}
	for k, v := range rb.Puts {
		s.kvs[k] = v
	}
	for range rb.Events {
		s.seq++
	}
	return nil
}

// applyBlind folds the batch contents without ever looking at the
// epoch — the exact bug class that survives a failover.
func (s *Store) applyBlind(rb ReplicationBatch) {
	for range rb.Events { // want `applies ReplicationBatch.Events without comparing the batch Epoch`
		s.seq++
	}
}

// frame stamps the epoch at construction, which counts as handling it.
func (s *Store) frame(evs []ChangeEvent) ReplicationBatch {
	rb := ReplicationBatch{Epoch: s.epoch}
	rb.Events = evs
	if len(evs) > 0 {
		rb.First, rb.Last = evs[0].Seq, evs[len(evs)-1].Seq
	}
	return rb
}

// cursor bookkeeping (First/Last) alone is not an apply: clean.
func span(rb ReplicationBatch) uint64 {
	return rb.Last - rb.First
}

func (s *Store) ImportReplicaSnapshot(m map[string][]byte) error {
	s.kvs = m
	return nil
}

func (s *Store) SetEpoch(e uint64) {
	s.epoch = e
}

// SetCommitIndex persists the cluster commit index — the quorum
// durability watermark the commit-after-ack rule guards.
func (s *Store) SetCommitIndex(seq uint64) error {
	if seq > s.commit {
		s.commit = seq
	}
	return nil
}

func (s *Store) CommitIndex() uint64 { return s.commit }
