package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Sketcher computes SCENT descriptors: an ensemble of m random linear
// measurements of the vectorized tensor. Measurement vectors are
// Rademacher (+1/-1) sequences generated pseudo-randomly from (seed,
// measurement index, cell index), so they never need to be materialized —
// the memory footprint is O(m), independent of tensor size, and a
// descriptor update for one changed cell costs O(m).
type Sketcher struct {
	shape []int
	m     int
	seed  int64
}

// NewSketcher creates a sketcher for tensors of the given shape with an
// ensemble of m measurements.
func NewSketcher(m int, seed int64, shape ...int) (*Sketcher, error) {
	if m <= 0 {
		return nil, fmt.Errorf("tensor: ensemble size must be positive, got %d", m)
	}
	if len(shape) == 0 {
		return nil, fmt.Errorf("%w: empty shape", ErrShape)
	}
	return &Sketcher{shape: append([]int(nil), shape...), m: m, seed: seed}, nil
}

// M returns the ensemble size.
func (sk *Sketcher) M() int { return sk.m }

// sign returns the +1/-1 Rademacher entry of measurement j at cell idx.
// splitmix64-style hashing gives independent, reproducible signs.
func (sk *Sketcher) sign(j, idx int) float64 {
	x := uint64(sk.seed) ^ (uint64(j)+1)*0x9e3779b97f4a7c15 ^ (uint64(idx)+1)*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x&1 == 0 {
		return 1
	}
	return -1
}

// Descriptor is the compact SCENT summary of one tensor epoch.
type Descriptor []float64

// Sketch computes the descriptor of a tensor. Cost: O(nnz × m).
func (sk *Sketcher) Sketch(t *Sparse) (Descriptor, error) {
	if !sameShape(sk.shape, t.shape) {
		return nil, fmt.Errorf("%w: sketcher %v vs tensor %v", ErrShape, sk.shape, t.shape)
	}
	d := make(Descriptor, sk.m)
	t.Each(func(coords []int, v float64) {
		idx := linearIndex(sk.shape, coords)
		for j := 0; j < sk.m; j++ {
			d[j] += sk.sign(j, idx) * v
		}
	})
	return d, nil
}

// Update applies a single-cell delta to an existing descriptor in O(m),
// the streaming fast path that makes SCENT incremental.
func (sk *Sketcher) Update(d Descriptor, delta float64, coords ...int) error {
	if len(d) != sk.m {
		return fmt.Errorf("tensor: descriptor size %d, want %d", len(d), sk.m)
	}
	if len(coords) != len(sk.shape) {
		return fmt.Errorf("%w: got %d coords", ErrShape, len(coords))
	}
	for i, c := range coords {
		if c < 0 || c >= sk.shape[i] {
			return fmt.Errorf("%w: coord out of range", ErrShape)
		}
	}
	idx := linearIndex(sk.shape, coords)
	for j := 0; j < sk.m; j++ {
		d[j] += sk.sign(j, idx) * delta
	}
	return nil
}

// Distance estimates the Frobenius distance between the tensors behind
// two descriptors: ||sketch(a) - sketch(b)|| / sqrt(m) is an unbiased
// estimator of ||a - b||_F for Rademacher ensembles.
func Distance(a, b Descriptor) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("tensor: descriptor sizes differ: %d vs %d", len(a), len(b))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a))), nil
}

// Detector flags structural change in a descriptor stream. A change is
// reported when the estimated distance between consecutive epochs exceeds
// mean + Threshold×stddev of the trailing window of distances (a
// self-calibrating rule, since absolute activity volumes vary by venue).
type Detector struct {
	// Threshold in standard deviations; defaults to 3 when zero.
	Threshold float64
	// Window is the trailing window length; defaults to 16 when zero.
	Window int

	history []float64
	prev    Descriptor
}

// Observe feeds the next epoch's descriptor and reports whether it
// constitutes a structural change relative to the recent past. The first
// observation never signals.
func (d *Detector) Observe(desc Descriptor) (bool, float64) {
	thr := d.Threshold
	if thr == 0 {
		thr = 3
	}
	win := d.Window
	if win == 0 {
		win = 16
	}
	if d.prev == nil {
		d.prev = append(Descriptor(nil), desc...)
		return false, 0
	}
	dist, err := Distance(d.prev, desc)
	if err != nil {
		return false, 0
	}
	d.prev = append(d.prev[:0], desc...)

	changed := false
	if len(d.history) >= 3 {
		mean, sd := meanStd(d.history)
		if dist > mean+thr*sd {
			changed = true
		}
	}
	// Change epochs are excluded from the baseline history so that a
	// level shift does not immediately inflate the threshold.
	if !changed {
		d.history = append(d.history, dist)
		if len(d.history) > win {
			d.history = d.history[len(d.history)-win:]
		}
	}
	return changed, dist
}

func meanStd(xs []float64) (mean, sd float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var v float64
	for _, x := range xs {
		d := x - mean
		v += d * d
	}
	v /= float64(len(xs))
	sd = math.Sqrt(v)
	if sd < 1e-12 {
		sd = 1e-12
	}
	return mean, sd
}

// Stream drives SCENT over a sequence of tensor epochs and records change
// points. It also exposes the exact full-recompute baseline for E6.

// StreamResult reports detection output for one epoch.
type StreamResult struct {
	Epoch    int
	Change   bool
	Distance float64
}

// MonitorSketched runs the SCENT detector over epochs using descriptors.
func MonitorSketched(sk *Sketcher, epochs []*Sparse, det *Detector) ([]StreamResult, error) {
	results := make([]StreamResult, 0, len(epochs))
	for i, t := range epochs {
		desc, err := sk.Sketch(t)
		if err != nil {
			return nil, err
		}
		ch, dist := det.Observe(desc)
		results = append(results, StreamResult{Epoch: i, Change: ch, Distance: dist})
	}
	return results, nil
}

// MonitorExact runs the same detection rule on exact Frobenius distances
// between consecutive epochs — the baseline SCENT is compared against.
func MonitorExact(epochs []*Sparse, det *Detector) ([]StreamResult, error) {
	results := make([]StreamResult, 0, len(epochs))
	var prev *Sparse
	for i, t := range epochs {
		if prev == nil {
			prev = t
			results = append(results, StreamResult{Epoch: i})
			// Seed the detector so window bookkeeping matches.
			det.prev = Descriptor{0}
			continue
		}
		dist, err := t.Diff(prev)
		if err != nil {
			return nil, err
		}
		prev = t
		ch := det.observeExact(dist)
		results = append(results, StreamResult{Epoch: i, Change: ch, Distance: dist})
	}
	return results, nil
}

// observeExact applies the detector's thresholding rule to an
// externally computed distance.
func (d *Detector) observeExact(dist float64) bool {
	thr := d.Threshold
	if thr == 0 {
		thr = 3
	}
	win := d.Window
	if win == 0 {
		win = 16
	}
	changed := false
	if len(d.history) >= 3 {
		mean, sd := meanStd(d.history)
		if dist > mean+thr*sd {
			changed = true
		}
	}
	if !changed {
		d.history = append(d.history, dist)
		if len(d.history) > win {
			d.history = d.history[len(d.history)-win:]
		}
	}
	return changed
}

// Delta is a single-cell update in a tensor stream — the native unit of
// arrival in the streaming setting SCENT targets.
type Delta struct {
	Coords []int
	Value  float64
}

// SyntheticStream generates a reproducible tensor stream for tests and
// benches: `epochs` tensors of the given shape with `baseNNZ` random
// entries drifting slowly, plus structural shifts (a dense block appears)
// at the given change points.
func SyntheticStream(seed int64, shape []int, epochs, baseNNZ int, changeAt map[int]bool) []*Sparse {
	stream, _ := SyntheticStreamWithDeltas(seed, shape, epochs, baseNNZ, changeAt)
	return stream
}

// SyntheticStreamWithDeltas is SyntheticStream exposing, for each epoch,
// the list of cell deltas that produced it from its predecessor — what an
// incremental monitor consumes.
func SyntheticStreamWithDeltas(seed int64, shape []int, epochs, baseNNZ int, changeAt map[int]bool) ([]*Sparse, [][]Delta) {
	rng := rand.New(rand.NewSource(seed))
	stream := make([]*Sparse, 0, epochs)
	deltas := make([][]Delta, 0, epochs)
	cur := MustSparse(shape...)
	coordsFor := func() []int {
		c := make([]int, len(shape))
		for i, d := range shape {
			c[i] = rng.Intn(d)
		}
		return c
	}
	var initial []Delta
	for i := 0; i < baseNNZ; i++ {
		c := coordsFor()
		v := rng.Float64()
		before, _ := cur.At(c...)
		_ = cur.Set(v, c...)
		initial = append(initial, Delta{Coords: c, Value: v - before})
	}
	for e := 0; e < epochs; e++ {
		next := cur.Clone()
		var ds []Delta
		if e == 0 {
			ds = append(ds, initial...)
		}
		// Slow drift: a handful of entries change slightly.
		for i := 0; i < baseNNZ/20+1; i++ {
			c := coordsFor()
			d := 0.1 * (rng.Float64() - 0.5)
			_ = next.Add(d, c...)
			ds = append(ds, Delta{Coords: c, Value: d})
		}
		if changeAt[e] {
			// Structural change: a burst of strong entries concentrated in
			// a random block (e.g. a hot session's Q&A explodes).
			base := coordsFor()
			for i := 0; i < baseNNZ/2+10; i++ {
				c := append([]int(nil), base...)
				for j := range c {
					span := shape[j]/8 + 1
					c[j] = (base[j] + rng.Intn(span)) % shape[j]
				}
				d := 1.5 + rng.Float64()
				_ = next.Add(d, c...)
				ds = append(ds, Delta{Coords: c, Value: d})
			}
		}
		stream = append(stream, next)
		deltas = append(deltas, ds)
		cur = next
	}
	return stream, deltas
}

// MonitorIncremental runs the SCENT detector maintaining the descriptor
// purely from per-epoch deltas: each cell update costs O(m), independent
// of tensor size or density — the headline complexity of SCENT.
func MonitorIncremental(sk *Sketcher, deltas [][]Delta, det *Detector) ([]StreamResult, error) {
	desc := make(Descriptor, sk.M())
	results := make([]StreamResult, 0, len(deltas))
	for i, ds := range deltas {
		for _, d := range ds {
			if err := sk.Update(desc, d.Value, d.Coords...); err != nil {
				return nil, err
			}
		}
		ch, dist := det.Observe(desc)
		results = append(results, StreamResult{Epoch: i, Change: ch, Distance: dist})
	}
	return results, nil
}
