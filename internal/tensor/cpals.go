package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// CP decomposition via alternating least squares — the "recompute the
// structure every epoch" baseline that SCENT [15] is measured against.
// Change detection with CP tracks the factor weights (lambda) across
// epochs; a structural shift moves the dominant components.

// CPResult is a rank-R canonical polyadic decomposition: for an order-N
// tensor, Factors[n] is an (shape[n] x R) matrix stored row-major, and
// Lambda holds the R component weights (columns normalized to unit
// norm).
type CPResult struct {
	Factors [][]float64
	Lambda  []float64
	Rank    int
	Shape   []int
}

// CPDecompose runs `iters` rounds of ALS at the given rank with a
// deterministic random initialization. Sparse-friendly: all MTTKRP
// (matricized tensor times Khatri-Rao product) work iterates only over
// non-zeros.
func CPDecompose(t *Sparse, rank, iters int, seed int64) (*CPResult, error) {
	if rank <= 0 {
		return nil, fmt.Errorf("tensor: rank must be positive, got %d", rank)
	}
	shape := t.Shape()
	n := len(shape)
	rng := rand.New(rand.NewSource(seed))
	factors := make([][]float64, n)
	for m := 0; m < n; m++ {
		factors[m] = make([]float64, shape[m]*rank)
		for i := range factors[m] {
			factors[m][i] = rng.Float64()
		}
	}
	lambda := make([]float64, rank)

	// Precompute the nnz list once.
	type entry struct {
		coords []int
		val    float64
	}
	var nnz []entry
	t.Each(func(coords []int, v float64) {
		nnz = append(nnz, entry{append([]int(nil), coords...), v})
	})
	if len(nnz) == 0 {
		return &CPResult{Factors: factors, Lambda: lambda, Rank: rank, Shape: shape}, nil
	}

	gram := make([]float64, rank*rank)
	mttkrp := make([]float64, 0)
	for iter := 0; iter < iters; iter++ {
		for mode := 0; mode < n; mode++ {
			rows := shape[mode]
			if cap(mttkrp) < rows*rank {
				mttkrp = make([]float64, rows*rank)
			}
			mttkrp = mttkrp[:rows*rank]
			for i := range mttkrp {
				mttkrp[i] = 0
			}
			// MTTKRP over non-zeros.
			prod := make([]float64, rank)
			for _, e := range nnz {
				for r := 0; r < rank; r++ {
					prod[r] = e.val
				}
				for m2 := 0; m2 < n; m2++ {
					if m2 == mode {
						continue
					}
					row := factors[m2][e.coords[m2]*rank : e.coords[m2]*rank+rank]
					for r := 0; r < rank; r++ {
						prod[r] *= row[r]
					}
				}
				dst := mttkrp[e.coords[mode]*rank : e.coords[mode]*rank+rank]
				for r := 0; r < rank; r++ {
					dst[r] += prod[r]
				}
			}
			// Gram = Hadamard product of the other factors' Gramians.
			for i := range gram {
				gram[i] = 1
			}
			for m2 := 0; m2 < n; m2++ {
				if m2 == mode {
					continue
				}
				f := factors[m2]
				rows2 := shape[m2]
				for a := 0; a < rank; a++ {
					for b := 0; b < rank; b++ {
						var s float64
						for i := 0; i < rows2; i++ {
							s += f[i*rank+a] * f[i*rank+b]
						}
						gram[a*rank+b] *= s
					}
				}
			}
			// Solve factor * gram = mttkrp row-wise (gram is rank x rank,
			// symmetric positive semi-definite; use ridge-regularized
			// Gaussian elimination).
			solveRows(factors[mode], mttkrp, gram, rows, rank)
			// Column normalization: lambda absorbs the norms.
			for r := 0; r < rank; r++ {
				var norm float64
				for i := 0; i < rows; i++ {
					v := factors[mode][i*rank+r]
					norm += v * v
				}
				norm = math.Sqrt(norm)
				if norm < 1e-12 {
					norm = 1e-12
				}
				for i := 0; i < rows; i++ {
					factors[mode][i*rank+r] /= norm
				}
				lambda[r] = norm
			}
		}
	}
	return &CPResult{Factors: factors, Lambda: lambda, Rank: rank, Shape: shape}, nil
}

// solveRows solves X * G = B for each row of B, overwriting dst. G is
// rank x rank; a small ridge term keeps it invertible.
func solveRows(dst, b, g []float64, rows, rank int) {
	// Copy and regularize G, then invert via Gauss-Jordan.
	a := make([]float64, rank*rank)
	copy(a, g)
	for r := 0; r < rank; r++ {
		a[r*rank+r] += 1e-9
	}
	inv := identity(rank)
	for col := 0; col < rank; col++ {
		// Partial pivot.
		piv := col
		for r := col + 1; r < rank; r++ {
			if math.Abs(a[r*rank+col]) > math.Abs(a[piv*rank+col]) {
				piv = r
			}
		}
		if piv != col {
			swapRows(a, rank, piv, col)
			swapRows(inv, rank, piv, col)
		}
		d := a[col*rank+col]
		if math.Abs(d) < 1e-15 {
			continue
		}
		for j := 0; j < rank; j++ {
			a[col*rank+j] /= d
			inv[col*rank+j] /= d
		}
		for r := 0; r < rank; r++ {
			if r == col {
				continue
			}
			f := a[r*rank+col]
			if f == 0 {
				continue
			}
			for j := 0; j < rank; j++ {
				a[r*rank+j] -= f * a[col*rank+j]
				inv[r*rank+j] -= f * inv[col*rank+j]
			}
		}
	}
	// dst[i] = b[i] * inv.
	row := make([]float64, rank)
	for i := 0; i < rows; i++ {
		bi := b[i*rank : i*rank+rank]
		for j := 0; j < rank; j++ {
			var s float64
			for k := 0; k < rank; k++ {
				s += bi[k] * inv[k*rank+j]
			}
			row[j] = s
		}
		copy(dst[i*rank:i*rank+rank], row)
	}
}

func identity(n int) []float64 {
	m := make([]float64, n*n)
	for i := 0; i < n; i++ {
		m[i*n+i] = 1
	}
	return m
}

func swapRows(m []float64, n, a, b int) {
	for j := 0; j < n; j++ {
		m[a*n+j], m[b*n+j] = m[b*n+j], m[a*n+j]
	}
}

// LambdaDistance measures structural distance between two decompositions
// as the L2 distance of their sorted component-weight vectors. Sorting
// makes the measure invariant to component permutation across epochs.
func LambdaDistance(a, b *CPResult) float64 {
	la := append([]float64(nil), a.Lambda...)
	lb := append([]float64(nil), b.Lambda...)
	sortDesc(la)
	sortDesc(lb)
	var s float64
	for i := range la {
		d := la[i] - lb[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func sortDesc(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] > xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// MonitorDecomposition is the decomposition-recompute baseline for E6: a
// rank-r CP decomposition per epoch, change signal = lambda distance
// between consecutive epochs, thresholded by the shared Detector rule.
func MonitorDecomposition(epochs []*Sparse, rank, iters int, det *Detector) ([]StreamResult, error) {
	results := make([]StreamResult, 0, len(epochs))
	var prev *CPResult
	for i, t := range epochs {
		cur, err := CPDecompose(t, rank, iters, 7)
		if err != nil {
			return nil, err
		}
		if prev == nil {
			prev = cur
			results = append(results, StreamResult{Epoch: i})
			continue
		}
		dist := LambdaDistance(prev, cur)
		prev = cur
		ch := det.observeExact(dist)
		results = append(results, StreamResult{Epoch: i, Change: ch, Distance: dist})
	}
	return results, nil
}
