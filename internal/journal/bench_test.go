package journal

import (
	"fmt"
	"testing"
)

// benchPayload approximates one coalesced store batch: a JSON-encoded
// event list plus a few kv records (~400 bytes).
func benchPayload(seq uint64) []byte {
	return []byte(fmt.Sprintf(`{"first":%d,"last":%d,"events":[{"seq":%d,"kind":1,"entity":"paper","id":"p%d","refs":["u1","u2"]}],"puts":{"paper/p%d":"eyJpZCI6InAxIiwidGl0bGUiOiJBIHBhcGVyIHdpdGggYSByZWFzb25hYmx5IGxvbmcgdGl0bGUifQ==","paperauth/u1/p%d":"","paperauth/u2/p%d":""}}`,
		seq, seq, seq, seq, seq, seq, seq))
}

// BenchmarkJournalAppend measures the durable append path: one framed,
// CRC'd, OS-flushed record per op — the per-write replication overhead
// a leader pays.
func BenchmarkJournalAppend(b *testing.B) {
	j, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := uint64(i + 1)
		if err := j.Append(Record{First: seq, Last: seq, Data: benchPayload(seq)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJournalReplay measures recovery + full read: reopening a
// populated journal (tail validation) and scanning every record — the
// restart cost and the worst-case follower catch-up read.
func BenchmarkJournalReplay(b *testing.B) {
	dir := b.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	const records = 2048
	for i := 1; i <= records; i++ {
		seq := uint64(i)
		if err := j.Append(Record{First: seq, Last: seq, Data: benchPayload(seq)}); err != nil {
			b.Fatal(err)
		}
	}
	j.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re, err := Open(dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		recs, err := re.ReadFrom(0, 0)
		if err != nil || len(recs) != records {
			b.Fatalf("ReadFrom = %d, %v", len(recs), err)
		}
		re.Close()
	}
}

// BenchmarkJournalReadFromTail measures the steady-state follower poll:
// reading the few newest records out of a large journal.
func BenchmarkJournalReadFromTail(b *testing.B) {
	j, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	const records = 2048
	for i := 1; i <= records; i++ {
		seq := uint64(i)
		if err := j.Append(Record{First: seq, Last: seq, Data: benchPayload(seq)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs, err := j.ReadFrom(records-8, 0)
		if err != nil || len(recs) != 8 {
			b.Fatalf("ReadFrom = %d, %v", len(recs), err)
		}
	}
}
