package social

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"hive/internal/journal"
)

func openDir(t *testing.T, dir string) *Store {
	t.Helper()
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// Regression: a reopened durable store must resume its change-event
// sequence where it left off — a fresh-started counter makes delta
// watermarks and journal offsets disagree with persisted state.
func TestChangeSeqResumesAfterReopen(t *testing.T) {
	dir := t.TempDir()
	st := openDir(t, dir)
	for i := 0; i < 5; i++ {
		if err := st.PutUser(User{ID: fmt.Sprintf("u%d", i), Name: "U"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Connect("u0", "u1"); err != nil {
		t.Fatal(err)
	}
	seq := st.ChangeSeq()
	if seq == 0 {
		t.Fatal("ChangeSeq = 0 after writes")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re := openDir(t, dir)
	if got := re.ChangeSeq(); got != seq {
		t.Fatalf("reopened ChangeSeq = %d, want %d", got, seq)
	}
	// New events continue the sequence instead of colliding with
	// persisted offsets.
	var got []ChangeEvent
	re.OnChange(func(evs []ChangeEvent) { got = append(got, evs...) })
	if err := re.PutUser(User{ID: "after", Name: "A"}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Seq != seq+1 {
		t.Fatalf("post-reopen event = %+v, want seq %d", got, seq+1)
	}
	if _, tail, _ := re.JournalStats(); tail != seq+1 {
		t.Fatalf("journal tail = %d, want %d", tail, seq+1)
	}
}

// The journal captures every delivered batch with its kv image; a
// second store applying those batches converges to identical contents.
func TestJournalBatchesReplicateStore(t *testing.T) {
	leader := openDir(t, t.TempDir())
	if err := leader.Batched(func() error {
		for i := 0; i < 3; i++ {
			if err := leader.PutUser(User{ID: fmt.Sprintf("u%d", i), Name: "U", Interests: []string{"graphs"}}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := leader.PutConference(Conference{ID: "c1", Name: "Conf"}); err != nil {
		t.Fatal(err)
	}
	if err := leader.PutSession(Session{ID: "s1", ConferenceID: "c1", Title: "S", Hashtag: "#s"}); err != nil {
		t.Fatal(err)
	}
	if err := leader.CheckIn("s1", "u0"); err != nil {
		t.Fatal(err)
	}

	batches, err := leader.ChangesSince(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) == 0 {
		t.Fatal("no journaled batches")
	}
	// The coalesced Batched pass is one batch.
	if batches[0].First != 1 || batches[0].Last != 3 || len(batches[0].Events) != 3 {
		t.Fatalf("first batch = [%d,%d] with %d events", batches[0].First, batches[0].Last, len(batches[0].Events))
	}

	follower := openDir(t, t.TempDir())
	var delivered []ChangeEvent
	follower.OnChange(func(evs []ChangeEvent) { delivered = append(delivered, evs...) })
	for _, rb := range batches {
		if err := follower.ApplyReplica(rb); err != nil {
			t.Fatal(err)
		}
	}
	if follower.ChangeSeq() != leader.ChangeSeq() {
		t.Fatalf("follower seq %d != leader seq %d", follower.ChangeSeq(), leader.ChangeSeq())
	}
	if !reflect.DeepEqual(follower.Users(), leader.Users()) {
		t.Fatalf("users diverge: %v vs %v", follower.Users(), leader.Users())
	}
	if got := follower.Attendees("s1"); len(got) != 1 || got[0] != "u0" {
		t.Fatalf("follower attendees = %v", got)
	}
	// The check-in's activity event replicated too (feeds are served
	// straight from the store).
	if follower.LastEventSeq() != leader.LastEventSeq() {
		t.Fatalf("activity seq %d != %d", follower.LastEventSeq(), leader.LastEventSeq())
	}
	if len(delivered) == 0 {
		t.Fatal("replica apply delivered no change events")
	}
	// Re-applying is a no-op (reconnect replays).
	before := follower.ChangeSeq()
	for _, rb := range batches {
		if err := follower.ApplyReplica(rb); err != nil {
			t.Fatal(err)
		}
	}
	if follower.ChangeSeq() != before {
		t.Fatalf("duplicate apply advanced seq to %d", follower.ChangeSeq())
	}
}

func TestSnapshotBootstrapThenTail(t *testing.T) {
	leader := openDir(t, t.TempDir())
	for i := 0; i < 4; i++ {
		if err := leader.PutUser(User{ID: fmt.Sprintf("u%d", i), Name: "U"}); err != nil {
			t.Fatal(err)
		}
	}
	seq, entries := leader.SnapshotForReplication()
	if seq != leader.ChangeSeq() || len(entries) == 0 {
		t.Fatalf("snapshot = seq %d, %d entries", seq, len(entries))
	}

	// Writes after the snapshot arrive via the journal tail.
	if err := leader.PutUser(User{ID: "late", Name: "L"}); err != nil {
		t.Fatal(err)
	}

	follower := openDir(t, t.TempDir())
	if err := follower.ImportReplicaSnapshot(seq, entries); err != nil {
		t.Fatal(err)
	}
	if follower.ChangeSeq() != seq {
		t.Fatalf("imported seq = %d, want %d", follower.ChangeSeq(), seq)
	}
	if len(follower.Users()) != 4 {
		t.Fatalf("imported users = %v", follower.Users())
	}
	batches, err := leader.ChangesSince(seq, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, rb := range batches {
		if err := follower.ApplyReplica(rb); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(follower.Users(), leader.Users()) {
		t.Fatalf("users diverge after tail: %v vs %v", follower.Users(), leader.Users())
	}
}

func TestChangesSinceCompactedSignalsBootstrap(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenJournaled(dir, nil, journal.Options{SegmentBytes: 256, Retain: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 200; i++ {
		if err := st.PutUser(User{ID: fmt.Sprintf("u%03d", i), Name: "U"}); err != nil {
			t.Fatal(err)
		}
	}
	oldest, tail, _ := st.JournalStats()
	if oldest <= 1 || tail != st.ChangeSeq() {
		t.Fatalf("journal stats = (%d, %d)", oldest, tail)
	}
	if _, err := st.ChangesSince(0, 0); !errors.Is(err, journal.ErrCompacted) {
		t.Fatalf("ChangesSince(0) err = %v, want ErrCompacted", err)
	}
	if _, err := st.ChangesSince(oldest-1, 10); err != nil {
		t.Fatalf("ChangesSince(horizon) err = %v", err)
	}
}

// In-memory stores have no journal: replication reads fail cleanly and
// writes are unaffected.
func TestInMemoryStoreHasNoJournal(t *testing.T) {
	st := openDir(t, "")
	if st.Journaled() {
		t.Fatal("in-memory store reports a journal")
	}
	if err := st.PutUser(User{ID: "u", Name: "U"}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ChangesSince(0, 0); err == nil {
		t.Fatal("ChangesSince on in-memory store succeeded")
	}
	if oldest, tail, segs := st.JournalStats(); oldest != 0 || tail != 0 || segs != 0 {
		t.Fatalf("JournalStats = (%d,%d,%d)", oldest, tail, segs)
	}
}
