// Package hive is the public API of the Hive Open Research Network
// Platform (Kim, Chen, Candan, Sapino — EDBT 2013): a conference-centric,
// cross-conference social platform for researchers with integrated
// knowledge services — context-aware search and previews, evidence-based
// peer discovery and explanation, collaborative recommendation, community
// discovery, and activity change monitoring.
//
// A Platform wraps the durable social store and the MiNC knowledge engine.
// Mutations (users, papers, check-ins, questions, workpads, ...) apply
// immediately and become visible to the knowledge services within the
// same call: the store emits typed change events and the platform folds
// them into the serving snapshot as an incremental delta (milliseconds,
// proportional to the write — not the corpus). Full rebuilds are demoted
// to *compaction*: they fold the accumulated overlay into a fresh base
// snapshot and refresh the evidence graphs, on the AutoRefresh cadence
// or an explicit Refresh.
//
//	p, _ := hive.Open(hive.Options{Dir: ""}) // in-memory
//	defer p.Close()
//	_ = p.RegisterUser(hive.User{ID: "zach", Name: "Zach"})
//	recs, _ := p.RecommendPeers("zach", 5)
package hive

import (
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"hive/internal/core"
	"hive/internal/election"
	"hive/internal/journal"
	"hive/internal/rdf"
	"hive/internal/social"
	"hive/internal/summarize"
	"hive/internal/tensor"
	"hive/internal/textindex"
)

// Re-exported domain types: the social layer's entities are the public
// vocabulary of the platform.
type (
	// User is a researcher profile.
	User = social.User
	// Conference is an event edition.
	Conference = social.Conference
	// Session is a technical session.
	Session = social.Session
	// Paper is a published or accepted paper.
	Paper = social.Paper
	// Presentation is uploaded slide/poster content.
	Presentation = social.Presentation
	// Question is a question about an entity.
	Question = social.Question
	// Answer replies to a question.
	Answer = social.Answer
	// Comment is free-form feedback on an entity.
	Comment = social.Comment
	// Workpad is the user's context-defining resource pad.
	Workpad = social.Workpad
	// WorkpadItem is one resource on a workpad.
	WorkpadItem = social.WorkpadItem
	// Collection is an exported, shareable workpad.
	Collection = social.Collection
	// Event is one activity-stream entry.
	Event = social.Event
	// ChangeEvent is one typed entry of the store's change log.
	ChangeEvent = social.ChangeEvent

	// Evidence is one relationship evidence (Figure 2).
	Evidence = core.Evidence
	// Explanation is a full relationship explanation between two users.
	Explanation = core.Explanation
	// PeerRecommendation is a suggested contact with its justification.
	PeerRecommendation = core.PeerRecommendation
	// SessionSuggestion is a scored session suggestion.
	SessionSuggestion = core.SessionSuggestion
	// ResourceRecommendation is a suggested document.
	ResourceRecommendation = core.ResourceRecommendation
	// SearchResult is a scored document hit.
	SearchResult = core.SearchResult
	// Snippet is a context-extracted document fragment.
	Snippet = textindex.Snippet
	// Keyphrase is an extracted key concept.
	Keyphrase = textindex.Keyphrase
	// Summary is a size-constrained update digest.
	Summary = summarize.Summary
	// ChangeResult reports activity change detection for one epoch.
	ChangeResult = tensor.StreamResult
	// DeltaStats summarizes a snapshot's incremental-maintenance state.
	DeltaStats = core.DeltaStats
)

// Workpad item kinds.
const (
	ItemUser         = social.ItemUser
	ItemPaper        = social.ItemPaper
	ItemPresentation = social.ItemPresentation
	ItemSession      = social.ItemSession
	ItemQuestion     = social.ItemQuestion
	ItemCollection   = social.ItemCollection
)

// Document namespaces used in search results and previews.
const (
	DocPaper        = core.DocPaper
	DocPresentation = core.DocPresentation
	DocQuestion     = core.DocQuestion
)

// CompactionPolicy bounds how far the serving snapshot may drift from
// its last full build before a compaction is due. Zero values take the
// defaults.
type CompactionPolicy struct {
	// OverlayDocs is the maximum overlay-segment size.
	OverlayDocs int
	// TombstoneRatio is the maximum dead fraction of the base segment.
	TombstoneRatio float64
	// GraphPending is the maximum number of applied events whose
	// evidence-graph effects (connections, co-attendance, Q&A edges,
	// coauthorship) await the next full build.
	GraphPending int
}

// Default compaction policy and delta-pipeline bounds.
const (
	defaultOverlayDocs    = 256
	defaultTombstoneRatio = 0.2
	defaultGraphPending   = 512
	// maxPendingEvents bounds the unapplied-event queue; past it the
	// platform stops queueing and falls back to one full rebuild (the
	// bulk-load path, where a compaction beats thousands of deltas).
	maxPendingEvents = 4096
	// maxDeltaBatch bounds how many events one ApplyDelta call folds in.
	maxDeltaBatch = 512
)

func (cp CompactionPolicy) withDefaults() CompactionPolicy {
	if cp.OverlayDocs <= 0 {
		cp.OverlayDocs = defaultOverlayDocs
	}
	if cp.TombstoneRatio <= 0 {
		cp.TombstoneRatio = defaultTombstoneRatio
	}
	if cp.GraphPending <= 0 {
		cp.GraphPending = defaultGraphPending
	}
	return cp
}

// Options configures Open.
type Options struct {
	// Dir is the storage directory; empty means in-memory (non-durable).
	// Durable platforms journal every change batch under Dir/journal —
	// the feed replication followers tail; an in-memory platform cannot
	// lead a replica set.
	Dir string
	// Clock overrides the time source (tests, replay). Nil = wall clock.
	Clock func() time.Time
	// Workers bounds the parallelism of engine rebuilds (the number of
	// derivation stages built concurrently). Zero means GOMAXPROCS.
	Workers int
	// DisableDeltas turns off incremental snapshot maintenance: writes
	// only mark the snapshot stale and every repair is a full rebuild
	// (the pre-delta behavior; useful for baselines and tests).
	DisableDeltas bool
	// Compaction tunes when the delta pipeline schedules a full build.
	Compaction CompactionPolicy

	// Cluster puts the platform in elected-cluster mode: the node's
	// role (leader or follower) is decided by Cluster.Election and
	// transitions live — see ClusterConfig. Requires a durable store
	// (Dir). For simple two-node read scaling, run a two-member set —
	// a manual elector pins the roles when a live election is overkill.
	Cluster *ClusterConfig
	// JournalSegmentBytes rotates journal segments past this size
	// (0 = default 4MiB).
	JournalSegmentBytes int64
	// JournalRetain bounds how many closed journal segments are kept
	// (0 = default 8). Together with JournalSegmentBytes it fixes how
	// far a disconnected follower may fall behind before it must
	// re-bootstrap from a snapshot.
	JournalRetain int
}

// Platform is the assembled Hive instance.
//
// The knowledge engine is an immutable snapshot published through an
// atomic pointer: readers load the current snapshot without locking.
// Writes emit typed change events; the platform applies them to the
// serving snapshot as an incremental delta (structurally sharing
// everything the events did not touch) and swaps the pointer. Full
// rebuilds — compactions — run in the background on the AutoRefresh
// cadence and swap the same pointer. Queries therefore never observe a
// half-built engine, and reads keep being served from the old snapshot
// for the entire rebuild.
type Platform struct {
	store   *social.Store
	workers int
	// shardID is this platform's position in a sharded deployment's
	// shard map (0 on standalone platforms). Set once by OpenSharded
	// before the platform is shared; stamped into NotLeaderError and
	// per-shard health so clients and operators can tell shard leaders
	// apart.
	shardID int

	deltasOff bool
	policy    CompactionPolicy

	current atomic.Pointer[core.Engine] // serving snapshot (nil until first build)
	gen     atomic.Uint64               // snapshot generation, bumped on every swap
	lastErr atomic.Pointer[refreshErr]  // outcome of the most recent maintenance run

	// Unapplied change events. pendingCount mirrors len(pending) for
	// lock-free staleness checks; overflow records that the queue was
	// abandoned in favor of a full rebuild.
	pendMu       sync.Mutex
	pending      []social.ChangeEvent
	overflow     bool
	pendingCount atomic.Int64

	deltasApplied atomic.Uint64 // delta swaps since Open
	compactions   atomic.Uint64 // full-build swaps since Open
	lastDeltaNs   atomic.Int64  // duration of the most recent delta apply

	flightMu sync.Mutex // guards flight and closed
	flight   *refreshFlight
	closed   bool

	autoMu   sync.Mutex // guards autoStop
	autoStop chan struct{}
	autoDone chan struct{}

	// Replication role state. role gates the write path (writable);
	// leaderP is the current leader hint handed to rejected writers;
	// followP is the active tail loop, nil while leading or between
	// leaders. In cluster mode the elector drives all three through
	// applyElection (cluster.go); in static modes they are fixed at
	// Open. See replication.go.
	role    atomic.Int32
	leaderP atomic.Pointer[string]
	followP atomic.Pointer[follower]

	// Cluster mode state (nil/zero outside cluster mode).
	selfURL    string
	peers      []string
	elector    election.Elector
	transCh    chan election.State // latest-wins election outcomes
	transStop  chan struct{}
	transDone  chan struct{}
	promotions atomic.Uint64 // follower → leader transitions since Open
	demotions  atomic.Uint64 // leader → follower transitions since Open

	// Quorum-write state (quorum.go). quorumK and ackTimeout are fixed
	// at Open; the ack map tracks, per follower URL, the highest change
	// sequence it confirmed applied (piggybacked on its replication
	// poll); ackCh is closed and replaced whenever the commit index
	// advances, waking writers parked in waitQuorum. replTransport is
	// the follower client's transport override (fault-injection seam).
	quorumK       int
	ackTimeout    time.Duration
	replTransport http.RoundTripper
	ackMu         sync.Mutex
	acks          map[string]followerAck
	ackCh         chan struct{}
	deferrals     atomic.Uint64 // promotions deferred to a more caught-up peer
	deferStreak   int           // consecutive deferrals; transition goroutine only
}

// refreshFlight coalesces concurrent maintenance into one run. full
// distinguishes a compaction (full rebuild) from a delta drain.
type refreshFlight struct {
	done chan struct{}
	err  error
	full bool
}

// refreshErr boxes a maintenance outcome for atomic storage (nil err on
// success).
type refreshErr struct{ err error }

// Open creates or opens a platform. With Options.Cluster set it opens
// in elected-cluster mode: the node joins as a write-fenced follower
// and assumes whichever role the election assigns, transitioning live
// afterwards. Without it the platform is a standalone leader.
func Open(opts Options) (*Platform, error) {
	st, err := social.OpenJournaled(opts.Dir, social.Clock(opts.Clock), journal.Options{
		SegmentBytes: opts.JournalSegmentBytes,
		Retain:       opts.JournalRetain,
	})
	if err != nil {
		return nil, err
	}
	p := &Platform{
		store:     st,
		workers:   opts.Workers,
		deltasOff: opts.DisableDeltas,
		policy:    opts.Compaction.withDefaults(),
	}
	// Every store write feeds the change log — including writes that
	// bypass the Platform wrappers and hit Store() directly. The
	// subscription queues the events and (unless deltas are disabled)
	// folds them into the serving snapshot before the write returns.
	// On a follower the same path fires when replicated batches are
	// folded in, so deltas flow identically on both roles.
	st.OnChange(p.onChange)
	switch {
	case opts.Cluster != nil:
		if err := p.startCluster(*opts.Cluster); err != nil {
			st.Close()
			return nil, err
		}
	default:
		// Standalone leader. A durable store that previously ran under
		// election keeps stamping its recovered term (so its batches
		// stay fenceable); a fresh one starts at term 1.
		if st.Journaled() && st.Epoch() == 0 {
			st.SetEpoch(1)
		}
		p.role.Store(roleLeader)
	}
	return p, nil
}

// ErrClosed is returned by refresh operations after Close.
var ErrClosed = errors.New("hive: platform closed")

// Close stops the elector and its transition loop (if any), the
// follower tail loop (if any) and auto-refresh, waits for any in-flight
// maintenance and releases the underlying storage. It is a quiescence
// point: once the closed mark is set no new rebuild can start, so after
// Close returns nothing reads the store anymore. A closing cluster
// leader does not resign; its lease lapses, taking the same handover
// path a crash would.
func (p *Platform) Close() error {
	p.stopCluster()
	p.stopFollowing()
	p.StopAutoRefresh()
	p.flightMu.Lock()
	p.closed = true
	f := p.flight
	p.flightMu.Unlock()
	if f != nil {
		<-f.done
	}
	return p.store.Close()
}

// Store exposes the raw social store for advanced callers.
func (p *Platform) Store() *social.Store { return p.store }

// onChange receives one coalesced change batch from the store: queue
// it, then — when a snapshot is serving and the delta path is healthy —
// fold it in synchronously so the write is visible to the knowledge
// services when the mutation returns. If maintenance is already in
// flight the events stay queued; the running flight drains them on its
// way out.
func (p *Platform) onChange(evs []social.ChangeEvent) {
	if len(evs) == 0 {
		return
	}
	p.pendMu.Lock()
	if p.overflow {
		p.pendMu.Unlock()
		return // queue abandoned; the next compaction reads the store
	}
	if len(p.pending)+len(evs) > maxPendingEvents {
		p.pending = nil
		p.overflow = true
		p.pendingCount.Store(0)
		p.pendMu.Unlock()
		return
	}
	p.pending = append(p.pending, evs...)
	p.pendingCount.Store(int64(len(p.pending)))
	p.pendMu.Unlock()

	if p.deltasOff || p.current.Load() == nil || p.overflowed() {
		return
	}
	// Synchronous single-flight delta apply; if another maintenance run
	// owns the flight, it (or its hand-off kick) picks the events up.
	if f, started, err := p.beginFlight(false); err == nil && started {
		_ = p.runFlight(f)
	}
}

// takePending removes and returns up to n queued events.
func (p *Platform) takePending(n int) []social.ChangeEvent {
	p.pendMu.Lock()
	defer p.pendMu.Unlock()
	if len(p.pending) == 0 {
		return nil
	}
	if n > len(p.pending) {
		n = len(p.pending)
	}
	batch := p.pending[:n:n]
	p.pending = append([]social.ChangeEvent(nil), p.pending[n:]...)
	p.pendingCount.Store(int64(len(p.pending)))
	return batch
}

func (p *Platform) overflowed() bool {
	p.pendMu.Lock()
	defer p.pendMu.Unlock()
	return p.overflow
}

// Refresh runs a full rebuild — a compaction — in the calling goroutine
// and atomically swaps the result in: the overlay folds into a fresh
// base segment and every derived structure (evidence graphs,
// communities, concept map, knowledge base) refreshes. Readers are
// never blocked: they keep resolving the previous snapshot until the
// swap. Concurrent Refresh calls coalesce into a single rebuild.
func (p *Platform) Refresh() error {
	for {
		f, started, err := p.beginFlight(true)
		if err != nil {
			return err
		}
		if started {
			return p.runFlight(f)
		}
		<-f.done
		if f.full {
			return f.err
		}
		// Joined a delta drain; the caller asked for a compaction, so
		// loop until one runs.
	}
}

// RefreshAsync kicks a background compaction unless maintenance is
// already in flight. It returns immediately; the new snapshot becomes
// visible atomically when the rebuild completes. The flight is
// registered before returning, so a subsequent Close waits for it.
func (p *Platform) RefreshAsync() {
	f, started, err := p.beginFlight(true)
	if err == nil && started {
		go func() { _ = p.runFlight(f) }()
	}
}

// ApplyDeltas synchronously drains the queued change events into the
// serving snapshot through the delta path (falling back to a full
// rebuild when there is no snapshot yet, the queue overflowed, or
// deltas are disabled). It returns once every event queued before the
// call is reflected in the snapshot.
func (p *Platform) ApplyDeltas() error {
	for {
		if p.current.Load() != nil && !p.overflowed() && p.pendingCount.Load() == 0 {
			return nil
		}
		f, started, err := p.beginFlight(false)
		if err != nil {
			return err
		}
		if started {
			return p.runFlight(f)
		}
		<-f.done
		if f.err != nil {
			return f.err
		}
	}
}

// beginFlight joins the in-flight maintenance or registers a new one.
// started reports ownership: the caller must run it via runFlight;
// otherwise it may wait on f.done and read f.err. After Close it
// returns ErrClosed and no flight.
func (p *Platform) beginFlight(full bool) (f *refreshFlight, started bool, err error) {
	p.flightMu.Lock()
	defer p.flightMu.Unlock()
	if p.closed {
		return nil, false, ErrClosed
	}
	if p.flight != nil {
		return p.flight, false, nil
	}
	f = &refreshFlight{done: make(chan struct{}), full: full}
	p.flight = f
	return f, true, nil
}

// runFlight executes the owned maintenance run and releases its
// waiters. If events queued up while the run was finishing, a follow-up
// delta flight is kicked in the background so nothing stays stranded.
func (p *Platform) runFlight(f *refreshFlight) error {
	if f.full {
		f.err = p.compact()
	} else {
		f.err = p.drainDeltas()
	}
	p.flightMu.Lock()
	p.flight = nil
	p.flightMu.Unlock()
	close(f.done)
	if f.err == nil && !p.deltasOff && p.pendingCount.Load() > 0 && p.current.Load() != nil {
		if nf, started, err := p.beginFlight(false); err == nil && started {
			go func() { _ = p.runFlight(nf) }()
		}
	}
	return f.err
}

// compact performs one full build + swap and consumes every change
// event emitted before the build started reading the store. Events
// racing the build stay queued and ride the next delta — and the
// engine's activity watermark makes replaying an already-covered event
// harmless.
func (p *Platform) compact() error {
	p.pendMu.Lock()
	hadOverflow := p.overflow
	p.overflow = false
	p.pendMu.Unlock()
	watermark := p.store.ChangeSeq()

	compactStart := time.Now()
	eng, err := (&core.Builder{Store: p.store, Workers: p.workers}).Build()
	p.lastErr.Store(&refreshErr{err: err})
	if err != nil {
		// The discarded-queue mark must survive a failed build, or the
		// platform would report current while the overflowed events'
		// data is missing from the snapshot.
		if hadOverflow {
			p.pendMu.Lock()
			p.overflow = true
			p.pendMu.Unlock()
		}
		return err
	}
	p.current.Store(eng)
	p.gen.Add(1)
	p.compactions.Add(1)
	mCompactions.Inc()
	mCompactionSeconds.ObserveSince(compactStart)

	p.pendMu.Lock()
	kept := p.pending[:0]
	for _, ev := range p.pending {
		if ev.Seq > watermark {
			kept = append(kept, ev)
		}
	}
	p.pending = kept
	p.pendingCount.Store(int64(len(p.pending)))
	p.pendMu.Unlock()
	return nil
}

// drainDeltas folds the queued events into the serving snapshot in
// bounded batches, one atomic swap per batch. Unavailable delta paths
// (no snapshot, overflow, deltas disabled) compact instead. A failing
// delta apply abandons the queue to the next compaction — the events'
// effects are persisted in the store, so the full rebuild recovers them.
func (p *Platform) drainDeltas() error {
	cur := p.current.Load()
	if cur == nil || p.deltasOff || p.overflowed() {
		return p.compact()
	}
	b := &core.Builder{Store: p.store, Workers: p.workers}
	for {
		batch := p.takePending(maxDeltaBatch)
		if len(batch) == 0 {
			return nil
		}
		applyStart := time.Now()
		eng, err := b.ApplyDelta(cur, batch)
		if err != nil {
			p.pendMu.Lock()
			p.pending = nil
			p.overflow = true
			p.pendingCount.Store(0)
			p.pendMu.Unlock()
			p.lastErr.Store(&refreshErr{err: err})
			return err
		}
		p.current.Store(eng)
		p.gen.Add(1)
		p.deltasApplied.Add(1)
		mDeltasApplied.Inc()
		mDeltaApplySeconds.ObserveSince(applyStart)
		p.lastDeltaNs.Store(int64(eng.DeltaStats().LastDeltaDur))
		p.lastErr.Store(&refreshErr{})
		cur = eng
	}
}

// LastRefreshError returns the error of the most recent maintenance run
// (delta apply or compaction), or nil if it succeeded (or none ran
// yet). Background runs have no caller to hand their error to; this —
// surfaced in the server's healthz — makes persistently failing
// maintenance observable instead of silently leaving the snapshot
// stale.
func (p *Platform) LastRefreshError() error {
	if box := p.lastErr.Load(); box != nil {
		return box.err
	}
	return nil
}

// Engine returns a fresh engine snapshot, draining pending change
// events first if data changed since the last swap (read-your-writes
// for library callers — normally a no-op, since writes apply their own
// deltas synchronously). Serving paths that prefer availability over
// freshness should use Snapshot instead.
func (p *Platform) Engine() (*core.Engine, error) {
	if p.Stale() || p.current.Load() == nil {
		if err := p.ApplyDeltas(); err != nil {
			return nil, err
		}
		// That call may have joined a run that started before this
		// caller's latest write. One more pass restores read-your-writes.
		if p.Stale() {
			if err := p.ApplyDeltas(); err != nil {
				return nil, err
			}
		}
	}
	return p.current.Load(), nil
}

// Snapshot returns the currently serving engine snapshot without ever
// blocking on maintenance. It is nil until the first build completes
// and may be stale (check Stale); it is always fully built.
func (p *Platform) Snapshot() *core.Engine { return p.current.Load() }

// Stale reports whether change events exist that the serving snapshot
// does not reflect. A snapshot with an applied delta overlay is
// *current*, not stale — only unapplied events (or a missing snapshot,
// or an overflowed event queue awaiting compaction) make it stale.
func (p *Platform) Stale() bool {
	return p.current.Load() == nil || p.pendingCount.Load() > 0 || p.overflowed()
}

// CompactionDue reports whether the serving snapshot drifted past the
// compaction policy: the overlay grew too large, too much of the base
// is tombstoned, too many graph-affecting events await integration, or
// the event queue overflowed. Serving continues either way; AutoRefresh
// (or an admin refresh) runs the compaction.
func (p *Platform) CompactionDue() bool {
	if p.overflowed() {
		return true
	}
	eng := p.current.Load()
	if eng == nil {
		return false // nothing to compact; Stale covers the first build
	}
	ds := eng.DeltaStats()
	return ds.OverlayDocs > p.policy.OverlayDocs ||
		ds.TombstoneRatio > p.policy.TombstoneRatio ||
		ds.GraphPending > p.policy.GraphPending
}

// Generation returns the number of snapshot swaps so far (deltas and
// compactions both count: any swap may change query results).
func (p *Platform) Generation() uint64 { return p.gen.Load() }

// PendingEvents returns the number of queued, unapplied change events.
func (p *Platform) PendingEvents() int { return int(p.pendingCount.Load()) }

// DeltasApplied returns the number of delta snapshot swaps since Open.
func (p *Platform) DeltasApplied() uint64 { return p.deltasApplied.Load() }

// Compactions returns the number of full-build swaps since Open.
func (p *Platform) Compactions() uint64 { return p.compactions.Load() }

// LastDeltaDuration returns the duration of the most recent delta
// apply (0 if none ran yet).
func (p *Platform) LastDeltaDuration() time.Duration {
	return time.Duration(p.lastDeltaNs.Load())
}

// AutoRefresh starts a background loop that runs a compaction every
// interval while one is due (per CompactionPolicy) or the snapshot is
// stale, keeping overlay size and evidence-graph drift bounded without
// any rebuild cost on the read or write paths. It replaces a previously
// started loop; a non-positive interval just stops the current loop
// (auto-refresh disabled). Stop it with StopAutoRefresh (Close does
// too).
func (p *Platform) AutoRefresh(interval time.Duration) {
	if interval <= 0 {
		p.StopAutoRefresh()
		return
	}
	// A loop started after Close would have nothing to stop it and
	// would tick against a closed store forever.
	p.flightMu.Lock()
	closed := p.closed
	p.flightMu.Unlock()
	if closed {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	// Atomically swap the new loop in while taking ownership of the
	// old one, so concurrent AutoRefresh calls each stop exactly the
	// loop they displaced and none leaks.
	p.autoMu.Lock()
	prevStop, prevDone := p.autoStop, p.autoDone
	p.autoStop, p.autoDone = stop, done
	p.autoMu.Unlock()
	if prevStop != nil {
		close(prevStop)
		<-prevDone
	}
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if p.CompactionDue() || p.Stale() {
					_ = p.Refresh()
				}
			}
		}
	}()
}

// StopAutoRefresh stops the AutoRefresh loop, if running, and waits for
// it to exit.
func (p *Platform) StopAutoRefresh() {
	p.autoMu.Lock()
	stop, done := p.autoStop, p.autoDone
	p.autoStop, p.autoDone = nil, nil
	p.autoMu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Additional re-exported service types.
type (
	// HistoryEntry is one matched personal-activity record.
	HistoryEntry = core.HistoryEntry
	// ResourceEvidence explains a user-resource relationship.
	ResourceEvidence = core.ResourceEvidence
	// KnowledgePath is a ranked weighted path in the RDF knowledge base.
	KnowledgePath = rdf.RankedPath
)
