package hive_test

import (
	"fmt"
	"log"

	"hive"
)

// ExampleOpen shows the minimal platform lifecycle.
func ExampleOpen() {
	p, err := hive.Open(hive.Options{}) // in-memory
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	_ = p.RegisterUser(hive.User{ID: "zach", Name: "Zach"})
	u, _ := p.GetUser("zach")
	fmt.Println(u.Name)
	// Output: Zach
}

// ExamplePlatform_Explain demonstrates relationship discovery between two
// researchers (Figure 2 of the paper).
func ExamplePlatform_Explain() {
	p, err := hive.Open(hive.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	_ = p.RegisterUser(hive.User{ID: "a", Name: "A", Affiliation: "ASU"})
	_ = p.RegisterUser(hive.User{ID: "b", Name: "B", Affiliation: "ASU"})
	_ = p.Follow("a", "b")

	ex, err := p.Explain("a", "b")
	if err != nil {
		log.Fatal(err)
	}
	for _, ev := range ex.Evidences {
		fmt.Println(ev.Kind, "-", ev.Description)
	}
	// Output:
	// affiliation-groups - same affiliation: ASU
	// following - a follows b
}

// ExamplePlatform_CheckIn shows session check-ins feeding the hashtag
// broadcast (the paper's Twitter bridge).
func ExamplePlatform_CheckIn() {
	p, err := hive.Open(hive.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	_ = p.RegisterUser(hive.User{ID: "zach", Name: "Zach"})
	_ = p.CreateConference(hive.Conference{ID: "edbt13", Name: "EDBT 2013"})
	_ = p.CreateSession(hive.Session{ID: "s1", ConferenceID: "edbt13",
		Title: "Graph Processing", Hashtag: "#graphs"})
	_ = p.CheckIn("s1", "zach")

	for _, ev := range p.EventsByTag("#graphs") {
		fmt.Println(ev.Actor, ev.Verb, ev.Object)
	}
	// Output: zach checkin s1
}

// ExamplePlatform_SearchWithContext shows how the active workpad steers
// search results (Figure 4).
func ExamplePlatform_SearchWithContext() {
	p, err := hive.Open(hive.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	_ = p.RegisterUser(hive.User{ID: "u", Name: "U"})
	_ = p.RegisterUser(hive.User{ID: "author", Name: "A"})
	_ = p.PublishPaper(hive.Paper{ID: "p-tensor", Title: "Tensor stream sketching",
		Abstract: "Sketching tensor streams for scalable monitoring of networks.",
		Authors:  []string{"author"}})
	_ = p.PublishPaper(hive.Paper{ID: "p-join", Title: "Join ordering for scalable engines",
		Abstract: "Scalable query engines and monitoring of join plans.",
		Authors:  []string{"author"}})
	_ = p.CreateWorkpad(hive.Workpad{ID: "w", Owner: "u", Name: "tensors",
		Items: []hive.WorkpadItem{{Kind: hive.ItemPaper, Ref: "p-tensor"}}})
	_ = p.ActivateWorkpad("u", "w")

	hits, err := p.SearchWithContext("u", "scalable monitoring", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(hits[0].DocID)
	// Output: paper/p-tensor
}
