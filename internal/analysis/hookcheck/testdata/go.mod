module hooktest

go 1.23
