package graph

import (
	"container/heap"
	"errors"
	"math"
)

// ErrNoPath is returned when no path connects the requested endpoints.
var ErrNoPath = errors.New("graph: no path")

// Path is a sequence of nodes together with the total cost of traversing
// the edges between them.
type Path struct {
	Nodes []NodeID
	Cost  float64
}

// CostFunc maps an edge to a non-negative traversal cost. Higher-weight
// edges usually mean *stronger* relationships, so callers typically invert
// the weight (see InverseWeightCost).
type CostFunc func(Edge) float64

// UnitCost charges 1 per edge regardless of weight (hop count).
func UnitCost(Edge) float64 { return 1 }

// InverseWeightCost charges 1/(1+w): strong edges are cheap to traverse.
// This is the cost model used by Hive's relationship-explanation search,
// where the "best" explanation path follows the strongest evidence.
func InverseWeightCost(e Edge) float64 { return 1 / (1 + e.Weight) }

// ShortestPath computes the minimum-cost path between two nodes with
// Dijkstra's algorithm under the given cost function. Costs must be
// non-negative.
func (g *Graph) ShortestPath(from, to NodeID, cost CostFunc) (Path, error) {
	if !g.valid(from) || !g.valid(to) {
		return Path{}, ErrNodeNotFound
	}
	dist, prev := g.dijkstra(from, to, cost, nil, nil)
	if math.IsInf(dist[to], 1) {
		return Path{}, ErrNoPath
	}
	return Path{Nodes: buildPath(prev, from, to), Cost: dist[to]}, nil
}

// dijkstra runs Dijkstra from `from`; when `to` is valid, it may stop once
// `to` is settled. bannedNodes and bannedEdges (from-node -> set of
// to-nodes) support Yen's algorithm.
func (g *Graph) dijkstra(from, to NodeID, cost CostFunc, bannedNodes map[NodeID]bool, bannedEdges map[NodeID]map[NodeID]bool) ([]float64, []NodeID) {
	n := len(g.nodes)
	dist := make([]float64, n)
	prev := make([]NodeID, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = Invalid
	}
	dist[from] = 0
	pq := &pathHeap{{id: from, cost: 0}}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(pathItem)
		if cur.cost > dist[cur.id] {
			continue
		}
		if cur.id == to {
			break
		}
		for _, e := range g.out[cur.id] {
			if bannedNodes[e.To] {
				continue
			}
			if m, ok := bannedEdges[cur.id]; ok && m[e.To] {
				continue
			}
			c := cost(e)
			if c < 0 {
				c = 0
			}
			nd := cur.cost + c
			if nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = cur.id
				heap.Push(pq, pathItem{id: e.To, cost: nd})
			}
		}
	}
	return dist, prev
}

func buildPath(prev []NodeID, from, to NodeID) []NodeID {
	var rev []NodeID
	for at := to; at != Invalid; at = prev[at] {
		rev = append(rev, at)
		if at == from {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// KShortestPaths returns up to k loopless minimum-cost paths between two
// nodes using Yen's algorithm. Hive uses this to present several
// alternative relationship explanations between two researchers
// (Figure 2 of the paper shows exactly such a list).
func (g *Graph) KShortestPaths(from, to NodeID, k int, cost CostFunc) ([]Path, error) {
	if k <= 0 {
		return nil, nil
	}
	first, err := g.ShortestPath(from, to, cost)
	if err != nil {
		return nil, err
	}
	paths := []Path{first}
	var candidates []Path
	for len(paths) < k {
		prevPath := paths[len(paths)-1].Nodes
		for i := 0; i < len(prevPath)-1; i++ {
			spurNode := prevPath[i]
			rootPath := prevPath[:i+1]

			bannedEdges := make(map[NodeID]map[NodeID]bool)
			for _, p := range paths {
				if len(p.Nodes) > i && equalPrefix(p.Nodes, rootPath) {
					m := bannedEdges[p.Nodes[i]]
					if m == nil {
						m = make(map[NodeID]bool)
						bannedEdges[p.Nodes[i]] = m
					}
					m[p.Nodes[i+1]] = true
				}
			}
			bannedNodes := make(map[NodeID]bool, i)
			for _, id := range rootPath[:i] {
				bannedNodes[id] = true
			}

			dist, prev := g.dijkstra(spurNode, to, cost, bannedNodes, bannedEdges)
			if math.IsInf(dist[to], 1) {
				continue
			}
			spurPath := buildPath(prev, spurNode, to)
			total := append(append([]NodeID(nil), rootPath[:i]...), spurPath...)
			c := g.pathCost(total, cost)
			if !containsPath(paths, total) && !containsPath(candidates, total) {
				candidates = append(candidates, Path{Nodes: total, Cost: c})
			}
		}
		if len(candidates) == 0 {
			break
		}
		best := 0
		for i := 1; i < len(candidates); i++ {
			if candidates[i].Cost < candidates[best].Cost {
				best = i
			}
		}
		paths = append(paths, candidates[best])
		candidates = append(candidates[:best], candidates[best+1:]...)
	}
	return paths, nil
}

func (g *Graph) pathCost(nodes []NodeID, cost CostFunc) float64 {
	var total float64
	for i := 0; i+1 < len(nodes); i++ {
		best := math.Inf(1)
		for _, e := range g.out[nodes[i]] {
			if e.To == nodes[i+1] {
				if c := cost(e); c < best {
					best = c
				}
			}
		}
		total += best
	}
	return total
}

func equalPrefix(p, prefix []NodeID) bool {
	if len(p) < len(prefix) {
		return false
	}
	for i := range prefix {
		if p[i] != prefix[i] {
			return false
		}
	}
	return true
}

func containsPath(paths []Path, nodes []NodeID) bool {
	for _, p := range paths {
		if len(p.Nodes) != len(nodes) {
			continue
		}
		same := true
		for i := range nodes {
			if p.Nodes[i] != nodes[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

type pathItem struct {
	id   NodeID
	cost float64
}

type pathHeap []pathItem

func (h pathHeap) Len() int            { return len(h) }
func (h pathHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h pathHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pathHeap) Push(x interface{}) { *h = append(*h, x.(pathItem)) }
func (h *pathHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
