package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, parsed and type-checked package ready for
// analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info

	allows []allowComment
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Incomplete bool
	Error      *struct{ Err string }
}

// Load discovers the packages matching patterns (relative to dir, in
// that directory's module context), parses their non-test Go files with
// comments, and type-checks them with the source importer so the whole
// pipeline works from an empty module cache. Packages with no Go files
// are skipped; any parse or type error aborts the load — an analyzer
// must never run over a half-typed tree.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	// The source importer resolves non-std import paths by running `go
	// list` in build.Default.Dir (not in the importing file's
	// directory), so point it at the module being analyzed for the
	// duration of the load. Load is sequential, so the global flip is
	// safe; tests in other packages run in separate processes.
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: resolve %s: %w", dir, err)
	}
	oldBuildDir := build.Default.Dir
	build.Default.Dir = absDir
	defer func() { build.Default.Dir = oldBuildDir }()

	fset := token.NewFileSet()
	// One source importer shared across the run: dependencies (stdlib
	// and intra-module) are type-checked once and cached.
	imp := importer.ForCompiler(fset, "source", nil)

	var pkgs []*Package
	for _, lp := range listed {
		if len(lp.GoFiles) == 0 {
			continue
		}
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("analysis: %s uses cgo, which the source importer cannot load", lp.ImportPath)
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: parse %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		var typeErrs []error
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		tpkg, _ := conf.Check(lp.ImportPath, fset, files, info)
		if len(typeErrs) > 0 {
			return nil, fmt.Errorf("analysis: type-check %s: %v", lp.ImportPath, typeErrs[0])
		}
		p := &Package{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			TypesInfo:  info,
		}
		p.collectAllows()
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// goList shells out to `go list -json` in dir and decodes the streamed
// package objects.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles,CgoFiles,Incomplete,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("analysis: go list %s: %s", strings.Join(patterns, " "), msg)
	}
	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %w", err)
		}
		if lp.Incomplete || lp.Error != nil {
			reason := "unknown error"
			if lp.Error != nil {
				reason = lp.Error.Err
			}
			return nil, fmt.Errorf("analysis: cannot load %s: %s", lp.ImportPath, reason)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}
