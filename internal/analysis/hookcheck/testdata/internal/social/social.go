// Package social is a stub mirroring the Store's mutator and locking
// shapes: exported mutators must feed the OnChange pipeline, and
// delivery/journal/HTTP work must not run under a Store mutex.
package social

import (
	"net/http"
	"sync"

	"hooktest/internal/journal"
	"hooktest/internal/kvstore"
)

type ChangeEvent struct{ Seq uint64 }

type Store struct {
	mu     sync.Mutex
	evMu   sync.Mutex
	hookMu sync.RWMutex
	kv     *kvstore.KV
	jn     *journal.Journal
	subs   []func([]ChangeEvent)
}

func (s *Store) emit(id string) {}

func (s *Store) scoped(fn func() error) error { return fn() }

func (s *Store) deliver(evs []ChangeEvent) {
	s.hookMu.RLock()
	subs := s.subs
	s.hookMu.RUnlock()
	for _, fn := range subs {
		fn(evs)
	}
}

func (s *Store) putJSON(key string, v any) error { return s.kv.Put(key, nil) }

// PutThing is a well-behaved mutator: write + emit.
func (s *Store) PutThing(id string) error {
	defer s.emit(id)
	return s.putJSON("thing/"+id, id)
}

// Connect batches its writes under scoped, which emits on exit.
func (s *Store) Connect(a, b string) error {
	return s.scoped(func() error {
		return s.kv.Put("edge/"+a+"/"+b, nil)
	})
}

// PutSilent writes the kv store but never emits: the serving snapshot
// goes stale until the next compaction.
func (s *Store) PutSilent(id string) error { // want `writes the kv store without firing OnChange`
	return s.kv.Put("thing/"+id, nil)
}

// DeleteSilent drops a key through the kv batch API without emitting.
func (s *Store) DeleteSilent(id string) error { // want `writes the kv store without firing OnChange`
	return s.kv.Delete("thing/" + id)
}

//lint:allow hookcheck snapshot import replaces the whole image; the follower rebuilds from scratch afterwards
func (s *Store) ImportImage(m map[string][]byte) error {
	return s.kv.ImportSnapshot(m)
}

// PutPair composes two emitting mutators without coalescing:
// subscribers see two deliveries for one logical mutation.
func (s *Store) PutPair(a, b string) error { // want `fires 2 change batches`
	if err := s.PutThing(a); err != nil {
		return err
	}
	return s.PutThing(b)
}

// PutPairBatched coalesces the same composition into one batch: clean.
func (s *Store) PutPairBatched(a, b string) error {
	return s.scoped(func() error {
		if err := s.PutThing(a); err != nil {
			return err
		}
		return s.PutThing(b)
	})
}

// Reader methods without writes are exempt.
func (s *Store) GetThing(id string) ([]byte, error) {
	return s.kv.Get("thing/" + id)
}

// flush unlocks before delivering: clean.
func (s *Store) flush(evs []ChangeEvent) {
	s.evMu.Lock()
	s.evMu.Unlock()
	s.deliver(evs)
}

// badDeliver fires subscribers while still holding evMu.
func (s *Store) badDeliver(evs []ChangeEvent) {
	s.evMu.Lock()
	s.deliver(evs) // want `while holding social.Store.evMu`
	s.evMu.Unlock()
}

// badJournal appends to the journal under the store mutex.
func (s *Store) badJournal(data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.jn.Append(journal.Record{Data: data}); err != nil { // want `while holding social.Store.mu`
		return
	}
}

// badHTTP does network I/O under evMu.
func (s *Store) badHTTP(url string) {
	s.evMu.Lock()
	defer s.evMu.Unlock()
	resp, err := http.Get(url) // want `while holding social.Store.evMu`
	if err == nil {
		resp.Body.Close()
	}
}

// earlyReturn: the unlock inside the branch must not clear the lock
// for the fallthrough path.
func (s *Store) earlyReturn(evs []ChangeEvent, skip bool) {
	s.evMu.Lock()
	if skip {
		s.evMu.Unlock()
		s.deliver(evs) // clean: this branch unlocked first
		return
	}
	s.jn.Append(journal.Record{}) // want `while holding social.Store.evMu`
	s.evMu.Unlock()
}

// allowJournal is the deliberate real-tree exception shape: appending
// under evMu keeps journal order identical to sequence order.
func (s *Store) allowJournal(data []byte) {
	s.evMu.Lock()
	//lint:allow hookcheck journal order must match sequence order
	s.jn.Append(journal.Record{Data: data})
	s.evMu.Unlock()
}

// closures are their own lock scope in both directions.
func (s *Store) closures(evs []ChangeEvent) {
	s.evMu.Lock()
	later := func() {
		s.deliver(evs) // clean: runs outside this lock region
	}
	s.evMu.Unlock()
	later()

	inner := func() {
		s.evMu.Lock()
		s.deliver(evs) // want `while holding social.Store.evMu`
		s.evMu.Unlock()
	}
	inner()
}
