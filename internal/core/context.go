package core

import (
	"hive/internal/social"
	"hive/internal/summarize"
	"hive/internal/textindex"
	"hive/internal/topk"
)

// Context services (paper §2.1, §2.3): the active workpad defines the
// user's activity context; every search, ranking, preview and digest is
// conditioned on it.

// ContextVector returns the user's context vector: the active workpad
// (every item rendered to text), the user's declared interests, and
// spreading activation over the concept map. Users with no active
// workpad fall back to interests alone.
//
// Vectors for all known users are precomputed into the snapshot by the
// Builder, so this is a map lookup on the serving path; the returned
// vector is shared and must be treated as read-only. Like every other
// knowledge structure it reflects the store as of the snapshot build
// (the paper's offline refresh model) — workpad changes enter on the
// next rebuild.
func (e *Engine) ContextVector(userID string) textindex.Vector {
	if v, ok := e.ctxOver[userID]; ok {
		return v
	}
	if v, ok := e.ctxVecs[userID]; ok {
		return v
	}
	return e.computeContextVector(userID)
}

// buildContextVectors precomputes every user's context vector into the
// snapshot and compiles it against the frozen index so context search
// needs no per-request query preparation (Builder phase 2; needs the
// concept map and the frozen index). The per-user derivations — each a
// keyphrase extraction plus a concept-map activation — dominate this
// stage, so the loop shards across the builder's workers.
func (e *Engine) buildContextVectors() {
	vecs := make([]textindex.Vector, len(e.users))
	cqs := make([]*textindex.CompiledVector, len(e.users))
	wpRefs := make([][]string, len(e.users))
	e.forUsersParallel(func(i int, u string) {
		v := e.computeContextVector(u)
		vecs[i] = v
		if e.frozen != nil && len(v) > 0 {
			cqs[i] = e.frozen.Compile(v)
		}
		// Snapshot the users pinned on the active workpad: the peer-
		// recommendation restart bias must come from snapshot state, so
		// the per-snapshot PageRank memo is a pure function of the user.
		if wp, err := e.store.ActiveWorkpad(u); err == nil {
			for _, item := range wp.Items {
				if item.Kind == social.ItemUser {
					wpRefs[i] = append(wpRefs[i], item.Ref)
				}
			}
		}
	})
	e.ctxVecs = make(map[string]textindex.Vector, len(e.users))
	e.ctxQueries = make(map[string]*textindex.CompiledVector, len(e.users))
	e.wpPeerRefs = make(map[string][]string, len(e.users))
	for i, u := range e.users {
		e.ctxVecs[u] = vecs[i]
		if cqs[i] != nil {
			e.ctxQueries[u] = cqs[i]
		}
		if len(wpRefs[i]) > 0 {
			e.wpPeerRefs[u] = wpRefs[i]
		}
	}
}

func (e *Engine) computeContextVector(userID string) textindex.Vector {
	v := make(textindex.Vector)
	u, err := e.store.User(userID)
	if err != nil {
		return v
	}
	for _, t := range textindex.Terms(joinStrings(u.Interests)) {
		v[t] += 1
	}
	wp, err := e.store.ActiveWorkpad(userID)
	if err == nil {
		var seeds []string
		for _, item := range wp.Items {
			text := e.entityText(item.Kind, item.Ref)
			tf := textindex.TermFrequency(text)
			v.Add(tf, 2) // workpad items dominate the context
			seeds = append(seeds, topSurfaceTerms(text, 3)...)
		}
		// Propagate through the concept map so related-but-unmentioned
		// concepts enter the context (§2.3 adaptation strategies).
		if e.concepts.Len() > 0 && len(seeds) > 0 {
			act := e.concepts.Activate(seeds)
			cv := conceptVector(act)
			v.Add(cv, 0.5)
		}
	}
	return v
}

func conceptVector(activation map[string]float64) textindex.Vector {
	v := make(textindex.Vector, len(activation))
	for term, w := range activation {
		if w > 0 {
			v[textindex.Stem(term)] += w
		}
	}
	// Normalize so activation cannot swamp the direct workpad terms.
	if n := v.Norm(); n > 0 {
		for t := range v {
			v[t] /= n
		}
	}
	return v
}

func topSurfaceTerms(text string, k int) []string {
	kps := textindex.ExtractKeyphrases(text, k)
	out := make([]string, 0, len(kps))
	for _, kp := range kps {
		out = append(out, kp.Term)
	}
	return out
}

func joinStrings(xs []string) string {
	out := ""
	for _, x := range xs {
		out += x + ". "
	}
	return out
}

// SearchResult is a scored document hit.
type SearchResult struct {
	DocID string
	Score float64
}

// Search runs plain BM25 keyword search over all indexed content,
// served from the segmented read view (base + delta overlay).
func (e *Engine) Search(query string, k int) []SearchResult {
	if r := e.reader(); r != nil {
		return toSearchResults(r.Search(query, k))
	}
	return toSearchResults(e.index.Search(query, k))
}

// SearchWithContext blends BM25 relevance with similarity to the user's
// current context: score = bm25 × (1 + ctxWeight × cosine(doc, context)).
// This is the §2.3 "filter, summarize, and rank alternatives and adapt
// according to their relevance" service.
func (e *Engine) SearchWithContext(userID, query string, k int) []SearchResult {
	ctx := e.ContextVector(userID)
	var base []textindex.Result
	if r := e.reader(); r != nil {
		base = r.Search(query, 4*k)
	} else {
		base = e.index.Search(query, 4*k)
	}
	if len(ctx) == 0 {
		return toSearchResults(clip(base, k))
	}
	const ctxWeight = 1.0
	h := topk.New[textindex.Result](k, func(a, b textindex.Result) bool {
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.DocID < b.DocID
	})
	for _, r := range base {
		sim := 0.0
		if dv, err := e.docVector(r.DocID); err == nil {
			sim = dv.Cosine(ctx)
		}
		h.Push(textindex.Result{DocID: r.DocID, Score: r.Score * (1 + ctxWeight*sim)})
	}
	return toSearchResults(h.Sorted())
}

// Preview extracts the k most context-relevant snippets from a document
// (paper §2.3(a): "relevant snippet extraction from documents"). The
// docID uses the index namespace (e.g. "pres/<id>", "paper/<id>").
func (e *Engine) Preview(userID, docID string, k int) ([]textindex.Snippet, error) {
	text, err := e.docText(docID)
	if err != nil {
		return nil, err
	}
	ctx := e.ContextVector(userID)
	return textindex.ExtractSnippets(text, ctx, k), nil
}

// Annotate extracts the top-k key concepts of a document for automated
// annotation (§2.3(b)).
func (e *Engine) Annotate(docID string, k int) ([]textindex.Keyphrase, error) {
	text, err := e.docText(docID)
	if err != nil {
		return nil, err
	}
	return textindex.ExtractKeyphrases(text, k), nil
}

// UpdateDigest produces the size-constrained summary of the user's feed
// (the "scheduled update reports" of §2.3, summarized with AlphaSum).
// Columns: actor, verb, target kind; the target-kind column generalizes
// through a small entity-type hierarchy.
func (e *Engine) UpdateDigest(userID string, budget int) (*summarize.Summary, error) {
	return e.DigestOfEvents(e.store.Feed(userID, 0), budget, nil)
}

// DigestOfEvents summarizes a pre-assembled feed with AlphaSum. kindOf
// overrides the target-kind classifier (nil = classify against this
// snapshot's store); a sharded coordinator passes the merged cross-shard
// feed plus a classifier that probes every shard, since an event's
// target may live on a different shard than the event.
func (e *Engine) DigestOfEvents(feed []social.Event, budget int, kindOf func(string) string) (*summarize.Summary, error) {
	if kindOf == nil {
		kindOf = e.targetKind
	}
	tab := &summarize.Table{Columns: []string{"actor", "verb", "target"}}
	for _, ev := range feed {
		tab.Rows = append(tab.Rows, []string{ev.Actor, ev.Verb, kindOf(ev.Object)})
	}
	h, err := summarize.NewHierarchy(map[string]string{
		"paper": "content", "presentation": "content", "question": "content",
		"session": "venue", "conference": "venue",
		"user": "people", "other": summarize.Root,
		"content": summarize.Root, "venue": summarize.Root, "people": summarize.Root,
	})
	if err != nil {
		return nil, err
	}
	s := summarize.NewSummarizer(tab.Columns, map[string]*summarize.Hierarchy{"target": h})
	return s.Greedy(tab, budget)
}

// TargetKind classifies an entity ID into the digest type hierarchy
// ("paper", "session", "user", ... or "other") against this snapshot's
// store.
func (e *Engine) TargetKind(entity string) string { return e.targetKind(entity) }

// targetKind classifies an entity ID into the digest type hierarchy.
func (e *Engine) targetKind(entity string) string {
	if entity == "" {
		return "other"
	}
	if _, err := e.store.Paper(entity); err == nil {
		return "paper"
	}
	if _, err := e.store.Presentation(entity); err == nil {
		return "presentation"
	}
	if _, err := e.store.Question(entity); err == nil {
		return "question"
	}
	if _, err := e.store.Session(entity); err == nil {
		return "session"
	}
	if _, err := e.store.Conference(entity); err == nil {
		return "conference"
	}
	if _, err := e.store.User(entity); err == nil {
		return "user"
	}
	return "other"
}

func toSearchResults(rs []textindex.Result) []SearchResult {
	out := make([]SearchResult, len(rs))
	for i, r := range rs {
		out[i] = SearchResult{DocID: r.DocID, Score: r.Score}
	}
	return out
}

func clip(rs []textindex.Result, k int) []textindex.Result {
	if k > 0 && len(rs) > k {
		return rs[:k]
	}
	return rs
}

// DetectOverlap reports content-reuse between two indexed documents via
// shingle resemblance and containment ([9]).
func (e *Engine) DetectOverlap(docA, docB string) (resemblance, containAinB float64, err error) {
	ta, err := e.docText(docA)
	if err != nil {
		return 0, 0, err
	}
	tb, err := e.docText(docB)
	if err != nil {
		return 0, 0, err
	}
	sa := textindex.Shingles(ta, 3)
	sb := textindex.Shingles(tb, 3)
	return textindex.Resemblance(sa, sb), textindex.Containment(sa, sb), nil
}

// WorkpadOf returns the user's active workpad items (empty when none).
func (e *Engine) WorkpadOf(userID string) []social.WorkpadItem {
	wp, err := e.store.ActiveWorkpad(userID)
	if err != nil {
		return nil
	}
	return wp.Items
}
