// Package caller exercises the discarded-error arm: results of
// fenced Store calls carry the ErrStaleEpoch/ErrEpochAhead verdict and
// must be consumed.
package caller

import "epochtest/internal/social"

func Drop(s *social.Store, rb social.ReplicationBatch) {
	s.ApplyReplica(rb)                 // want `error from ApplyReplica is discarded`
	_ = s.ApplyReplica(rb)             // want `error from ApplyReplica is discarded`
	go s.ApplyReplica(rb)              // want `error from ApplyReplica is discarded`
	s.ImportReplicaSnapshot(nil)       // want `error from ImportReplicaSnapshot is discarded`
	defer s.ImportReplicaSnapshot(nil) // want `error from ImportReplicaSnapshot is discarded`

	//lint:allow epochcheck reconnect loop retries this batch on the next poll
	s.ApplyReplica(rb)

	if err := s.ApplyReplica(rb); err != nil { // clean: error consumed
		panic(err)
	}
	s.SetEpoch(3) // clean: no error result to drop
}

// --- Commit-after-ack rule: the commit index may only advance on
// quorum-acknowledged sequences, so SetCommitIndex needs a preceding
// ack/quorum consultation in the same function.

// BlindCommit advances the watermark on nothing but the local
// sequence — no ack table was ever consulted.
func BlindCommit(s *social.Store, seq uint64) {
	if err := s.SetCommitIndex(seq); err != nil { // want `calls SetCommitIndex without a preceding quorum ack check`
		panic(err)
	}
}

// AckedCommit computes the quorum bound from follower acks first:
// clean.
func AckedCommit(s *social.Store, acks map[string]uint64, k int) {
	quorumSeq := kthAcked(acks, k)
	if quorumSeq > s.CommitIndex() {
		if err := s.SetCommitIndex(quorumSeq); err != nil {
			panic(err)
		}
	}
}

// LateAck consults the ack table only after the update — ordering is
// the invariant, so this is still a violation.
func LateAck(s *social.Store, acks map[string]uint64, seq uint64) {
	if err := s.SetCommitIndex(seq); err != nil { // want `calls SetCommitIndex without a preceding quorum ack check`
		panic(err)
	}
	_ = len(acks)
}

// BackoffCommit has "ack" only as a substring of backoff — word
// matching must not count it.
func BackoffCommit(s *social.Store, backoff uint64) {
	if err := s.SetCommitIndex(backoff); err != nil { // want `calls SetCommitIndex without a preceding quorum ack check`
		panic(err)
	}
}

// AdoptCommit is the follower side: the leader already proved the
// quorum, the follower adopts its published index — the one legitimate
// suppression.
func AdoptCommit(s *social.Store, leaderCommit uint64) {
	//lint:allow epochcheck follower adopts the leader-proved commit index
	if err := s.SetCommitIndex(leaderCommit); err != nil {
		panic(err)
	}
}

func kthAcked(acks map[string]uint64, k int) uint64 {
	var best uint64
	n := 0
	for _, a := range acks {
		n++
		if a > best {
			best = a
		}
	}
	if n < k {
		return 0
	}
	return best
}
