package social

import (
	"fmt"
	"sort"

	"hive/internal/kvstore"
)

// Shard-partition support. A sharded deployment runs one Store per
// shard and routes each mutation to the shard owning its user; the
// helpers here are the few store-level primitives that routing needs
// beyond the normal mutation surface: mirroring the symmetric half of a
// cross-shard connection, existence probes for routing by referenced
// entity, and a bounded newest-first event fetch for cross-shard feed
// pagination.

// MirrorConnection writes the connection edge between two users without
// logging an activity event. A connection between users on different
// shards applies as a full Connect on the initiator's shard (edge +
// activity) and a MirrorConnection on the peer's shard (edge only), so
// both shard engines see the edge in their graph layers while the
// activity stream records the connection exactly once. It consumes no
// clock and no activity sequence.
func (s *Store) MirrorConnection(a, b string) error {
	if a == b {
		return fmt.Errorf("%w: self-connection", ErrInvalid)
	}
	for _, u := range []string{a, b} {
		if !s.kv.Has(pUser + u) {
			return fmt.Errorf("%w: user %q", ErrNotFound, u)
		}
	}
	return s.scoped(func() error {
		batch := kvstore.NewBatch().
			Put(pConn+pairKey(a, b), nil).
			Put(pConnIdx+a+"/"+b, nil).
			Put(pConnIdx+b+"/"+a, nil)
		if err := s.kv.Apply(batch); err != nil {
			return err
		}
		s.emit(ChangePut, EntityConnection, pairKey(a, b), a, b)
		return nil
	})
}

// Existence probes for shard routing: a mutation referencing an entity
// by ID (an answer's question, a workpad item's workpad) lands on the
// shard that has the entity, which the router finds by probing.

// HasPaper reports whether a paper exists.
func (s *Store) HasPaper(id string) bool { return s.kv.Has(pPaper + id) }

// HasQuestion reports whether a question exists.
func (s *Store) HasQuestion(id string) bool { return s.kv.Has(pQuestion + id) }

// HasWorkpad reports whether a workpad exists.
func (s *Store) HasWorkpad(id string) bool { return s.kv.Has(pWorkpad + id) }

// HasCollection reports whether a collection exists.
func (s *Store) HasCollection(id string) bool { return s.kv.Has(pCollection + id) }

// EventsByActorsBefore returns up to limit events authored by the given
// actors with Seq < before, newest first. before == 0 means unbounded
// (start from the newest event). It is the per-shard leg of the
// scatter-gather feed: each shard serves its own slice of the follow
// set's activity, and the coordinator k-way merges the newest-first
// streams, paginating on a per-shard sequence bound.
func (s *Store) EventsByActorsBefore(actors []string, before uint64, limit int) []Event {
	var evs []Event
	for _, a := range actors {
		for _, ev := range s.EventsByActor(a) {
			if before == 0 || ev.Seq < before {
				evs = append(evs, ev)
			}
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].Seq > evs[j].Seq })
	if limit > 0 && len(evs) > limit {
		evs = evs[:limit]
	}
	return evs
}
