// Command hivelint is the repo's invariant checker: a multichecker
// that runs the custom analyzers under internal/analysis — the
// machine-checked form of the platform's concurrency and replication
// contracts — plus `go vet`, over the requested packages.
//
// Usage:
//
//	hivelint [-vet=false] [packages ...]   (default ./...)
//
// Findings print as file:line:col: message [analyzer] and make the
// exit status nonzero, so `make lint` and CI gate on a clean tree.
// Deliberate exceptions are annotated in source:
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line above; the reason is mandatory and
// malformed suppressions are themselves findings.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"

	"hive/internal/analysis"
	"hive/internal/analysis/apierrcheck"
	"hive/internal/analysis/epochcheck"
	"hive/internal/analysis/hookcheck"
	"hive/internal/analysis/metriccheck"
	"hive/internal/analysis/snapshotcheck"
)

var analyzers = []*analysis.Analyzer{
	snapshotcheck.Analyzer,
	epochcheck.Analyzer,
	hookcheck.Analyzer,
	apierrcheck.Analyzer,
	metriccheck.Analyzer,
}

func main() {
	vet := flag.Bool("vet", true, "also run `go vet` over the same packages")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hivelint [-vet=false] [packages ...]\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hivelint:", err)
		os.Exit(2)
	}

	// All packages from one Load share a FileSet, so positions render
	// uniformly.
	type located struct {
		file string
		line int
		col  int
		d    analysis.Diagnostic
	}
	var out []located
	for _, pkg := range pkgs {
		diags := pkg.MalformedAllows()
		for _, a := range analyzers {
			ds, err := analysis.Run(a, pkg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hivelint:", err)
				os.Exit(2)
			}
			diags = append(diags, ds...)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			out = append(out, located{pos.Filename, pos.Line, pos.Column, d})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		if out[i].line != out[j].line {
			return out[i].line < out[j].line
		}
		return out[i].col < out[j].col
	})
	for _, l := range out {
		fmt.Printf("%s:%d:%d: %s [%s]\n", l.file, l.line, l.col, l.d.Message, l.d.Analyzer)
	}
	if len(out) > 0 {
		fmt.Printf("hivelint: %d finding(s)\n", len(out))
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
