// Command hived serves the Hive platform over HTTP (the Figure 1
// surface).
//
// Usage:
//
//	hived [-addr :8080] [-data DIR] [-seed users] [-refresh 30s] [-workers N]
//
// With -seed N, a synthetic conference workload of N users is generated
// and loaded at startup so the API has data to serve. With -refresh D,
// the knowledge engine is rebuilt in the background every D while data
// changed; rebuilds fan the derivation stages out across -workers
// goroutines and swap the snapshot atomically, so requests keep being
// served from the previous snapshot for the whole rebuild. A rebuild can
// also be requested over HTTP: POST /api/admin/refresh (async; add
// ?wait=true to block until the swap), and GET /api/healthz reports the
// serving snapshot's generation, age and staleness.
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"hive"
	"hive/internal/server"
	"hive/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "", "storage directory (empty = in-memory)")
	seed := flag.Int("seed", 0, "generate a synthetic workload with this many users")
	refresh := flag.Duration("refresh", 30*time.Second, "background snapshot refresh interval (0 = disabled)")
	workers := flag.Int("workers", 0, "engine rebuild parallelism (0 = GOMAXPROCS)")
	flag.Parse()

	p, err := hive.Open(hive.Options{Dir: *data, Workers: *workers})
	if err != nil {
		log.Fatalf("open platform: %v", err)
	}
	defer p.Close()

	if *seed > 0 {
		ds := workload.Generate(workload.Config{Seed: 42, Users: *seed})
		if err := ds.Load(p.Store()); err != nil {
			log.Fatalf("load workload: %v", err)
		}
		log.Printf("seeded %d users, %d papers, %d sessions",
			len(ds.Users), len(ds.Papers), len(ds.Sessions))
	}
	if err := p.Refresh(); err != nil {
		log.Fatalf("build knowledge engine: %v", err)
	}
	if eng := p.Snapshot(); eng != nil {
		log.Printf("knowledge engine ready in %v (generation %d)", eng.BuildDuration(), p.Generation())
	}
	if *refresh > 0 {
		p.AutoRefresh(*refresh)
		log.Printf("auto-refresh every %v", *refresh)
	}

	log.Printf("hived listening on %s", *addr)
	if err := http.ListenAndServe(*addr, server.New(p)); err != nil {
		log.Fatalf("serve: %v", err)
	}
}
