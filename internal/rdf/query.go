package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// Query support: basic graph patterns with variables, in the spirit of
// R2DB's weighted-SPARQL subset [12]. Variables are terms starting with
// '?'. A solution binds every variable and carries a score equal to the
// product of the weights of the matched triples.

// QueryPattern is one triple pattern of a basic graph pattern; any field
// may be a variable ("?x") or a constant.
type QueryPattern struct {
	Subject   string
	Predicate string
	Object    string
}

// Binding maps variable names (with the leading '?') to terms.
type Binding map[string]string

// Solution is a complete binding with its combined weight.
type Solution struct {
	Bindings Binding
	Score    float64
}

// IsVariable reports whether a term is a query variable.
func IsVariable(term string) bool { return strings.HasPrefix(term, "?") }

// Query evaluates a basic graph pattern and returns all solutions sorted
// by descending score. Patterns are joined left to right with index
// lookups on the already-bound fields (a simple but effective join order
// for Hive's star-shaped queries).
func (st *Store) Query(patterns []QueryPattern) []Solution {
	if len(patterns) == 0 {
		return nil
	}
	sols := []Solution{{Bindings: Binding{}, Score: 1}}
	for _, qp := range patterns {
		var next []Solution
		for _, sol := range sols {
			s := resolve(qp.Subject, sol.Bindings)
			p := resolve(qp.Predicate, sol.Bindings)
			o := resolve(qp.Object, sol.Bindings)
			matches := st.Match(Pattern{
				Subject:   constOrEmpty(s),
				Predicate: constOrEmpty(p),
				Object:    constOrEmpty(o),
			})
			for _, m := range matches {
				nb := cloneBinding(sol.Bindings)
				if !bind(nb, s, m.Subject) || !bind(nb, p, m.Predicate) || !bind(nb, o, m.Object) {
					continue
				}
				next = append(next, Solution{Bindings: nb, Score: sol.Score * m.Weight})
			}
		}
		sols = next
		if len(sols) == 0 {
			return nil
		}
	}
	sort.Slice(sols, func(i, j int) bool {
		if sols[i].Score != sols[j].Score {
			return sols[i].Score > sols[j].Score
		}
		return fmt.Sprint(sols[i].Bindings) < fmt.Sprint(sols[j].Bindings)
	})
	return sols
}

// QueryTopK evaluates the pattern and returns at most k best solutions.
func (st *Store) QueryTopK(patterns []QueryPattern, k int) []Solution {
	sols := st.Query(patterns)
	if k > 0 && len(sols) > k {
		sols = sols[:k]
	}
	return sols
}

func resolve(term string, b Binding) string {
	if IsVariable(term) {
		if v, ok := b[term]; ok {
			return v
		}
	}
	return term
}

func constOrEmpty(term string) string {
	if IsVariable(term) {
		return ""
	}
	return term
}

func bind(b Binding, term, value string) bool {
	if !IsVariable(term) {
		return term == value
	}
	if prev, ok := b[term]; ok {
		return prev == value
	}
	b[term] = value
	return true
}

func cloneBinding(b Binding) Binding {
	nb := make(Binding, len(b)+2)
	for k, v := range b {
		nb[k] = v
	}
	return nb
}
