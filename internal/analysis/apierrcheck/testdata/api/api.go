// Package api is a stub of the wire contract: the closed error-code
// registry and the typed error envelope.
package api

const (
	CodeNotFound        = "not_found"
	CodeInvalidArgument = "invalid_argument"
	CodeInternal        = "internal"
)

type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *Error) Error() string { return e.Message }

func IsCode(err error, code string) bool {
	e, ok := err.(*Error)
	return ok && e.Code == code
}
