package election

import (
	"sync"
	"testing"
	"time"
)

// watcher collects notify callbacks and lets tests wait for a
// condition on the latest state.
type watcher struct {
	mu     sync.Mutex
	states []State
}

func (w *watcher) notify(st State) {
	w.mu.Lock()
	w.states = append(w.states, st)
	w.mu.Unlock()
}

func (w *watcher) waitFor(t *testing.T, timeout time.Duration, pred func(State) bool) State {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		w.mu.Lock()
		for _, st := range w.states {
			if pred(st) {
				w.mu.Unlock()
				return st
			}
		}
		w.mu.Unlock()
		time.Sleep(2 * time.Millisecond)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	t.Fatalf("condition not reached within %v; observed states: %v", timeout, w.states)
	return State{}
}

func newLease(t *testing.T, dir, self string, ttl time.Duration) *FileLease {
	t.Helper()
	f, err := NewFileLease(LeaseConfig{Dir: dir, Self: self, TTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFileLeaseSingleNodeAcquires(t *testing.T) {
	f := newLease(t, t.TempDir(), "http://a", 100*time.Millisecond)
	defer f.Stop()
	var w watcher
	f.Start(0, w.notify)
	st := w.waitFor(t, 5*time.Second, func(st State) bool { return st.Role == Leader })
	if st.Epoch == 0 || st.Leader != "http://a" {
		t.Fatalf("leader state = %+v, want epoch > 0 and leader http://a", st)
	}
	if got := f.State(); got.Role != Leader {
		t.Fatalf("State() = %+v after leadership", got)
	}
}

func TestFileLeaseEpochFloor(t *testing.T) {
	f := newLease(t, t.TempDir(), "http://a", 100*time.Millisecond)
	defer f.Stop()
	var w watcher
	f.Start(41, w.notify)
	st := w.waitFor(t, 5*time.Second, func(st State) bool { return st.Role == Leader })
	if st.Epoch <= 41 {
		t.Fatalf("claimed epoch %d, want > floor 41", st.Epoch)
	}
}

func TestFileLeaseSecondNodeFollows(t *testing.T) {
	dir := t.TempDir()
	ttl := 100 * time.Millisecond
	a := newLease(t, dir, "http://a", ttl)
	defer a.Stop()
	var wa watcher
	a.Start(0, wa.notify)
	lead := wa.waitFor(t, 5*time.Second, func(st State) bool { return st.Role == Leader })

	b := newLease(t, dir, "http://b", ttl)
	defer b.Stop()
	var wb watcher
	b.Start(0, wb.notify)
	st := wb.waitFor(t, 5*time.Second, func(st State) bool { return st.Leader == "http://a" })
	if st.Role != Follower || st.Epoch != lead.Epoch {
		t.Fatalf("second node state = %+v, want follower of http://a at epoch %d", st, lead.Epoch)
	}
}

func TestFileLeaseFailoverBumpsEpoch(t *testing.T) {
	dir := t.TempDir()
	ttl := 100 * time.Millisecond
	a := newLease(t, dir, "http://a", ttl)
	var wa watcher
	a.Start(0, wa.notify)
	lead := wa.waitFor(t, 5*time.Second, func(st State) bool { return st.Role == Leader })

	b := newLease(t, dir, "http://b", ttl)
	defer b.Stop()
	var wb watcher
	b.Start(0, wb.notify)
	wb.waitFor(t, 5*time.Second, func(st State) bool { return st.Leader == "http://a" })

	// Stop the leader without resigning: the lease must lapse and the
	// follower must claim it at a strictly higher epoch.
	a.Stop()
	st := wb.waitFor(t, 10*time.Second, func(st State) bool { return st.Role == Leader })
	if st.Epoch <= lead.Epoch {
		t.Fatalf("promoted at epoch %d, want > deposed leader's %d", st.Epoch, lead.Epoch)
	}
	if st.Leader != "http://b" {
		t.Fatalf("promoted state names leader %q, want http://b", st.Leader)
	}
}

func TestFileLeaseAtMostOneLeader(t *testing.T) {
	dir := t.TempDir()
	ttl := 80 * time.Millisecond
	selfs := []string{"http://a", "http://b", "http://c"}
	leases := make([]*FileLease, len(selfs))
	for i, self := range selfs {
		leases[i] = newLease(t, dir, self, ttl)
		defer leases[i].Stop()
		leases[i].Start(0, nil)
	}
	// Sample repeatedly: at every instant at most one elector reports
	// leadership at the current maximum epoch.
	deadline := time.Now().Add(2 * time.Second)
	sawLeader := false
	for time.Now().Before(deadline) {
		var maxEpoch uint64
		states := make([]State, len(leases))
		for i, l := range leases {
			states[i] = l.State()
			if states[i].Epoch > maxEpoch {
				maxEpoch = states[i].Epoch
			}
		}
		leaders := 0
		for _, st := range states {
			if st.Role == Leader && st.Epoch == maxEpoch {
				leaders++
			}
		}
		if leaders > 1 {
			t.Fatalf("observed %d leaders at epoch %d: %+v", leaders, maxEpoch, states)
		}
		if leaders == 1 {
			sawLeader = true
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sawLeader {
		t.Fatal("no elector ever reported leadership")
	}
}

func TestManualElector(t *testing.T) {
	m := NewManual()
	pre := State{Role: Leader, Epoch: 7, Leader: "http://x"}
	m.Set(pre) // before Start: recorded, delivered on Start
	var w watcher
	m.Start(0, w.notify)
	w.waitFor(t, time.Second, func(st State) bool { return st == pre })

	next := State{Role: Follower, Epoch: 8, Leader: "http://y"}
	m.Set(next)
	w.waitFor(t, time.Second, func(st State) bool { return st == next })
	if got := m.State(); got != next {
		t.Fatalf("State() = %+v, want %+v", got, next)
	}
}
