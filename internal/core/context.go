package core

import (
	"sort"

	"hive/internal/social"
	"hive/internal/summarize"
	"hive/internal/textindex"
)

// Context services (paper §2.1, §2.3): the active workpad defines the
// user's activity context; every search, ranking, preview and digest is
// conditioned on it.

// ContextVector derives the user's current context vector from the
// active workpad (every item rendered to text), the user's declared
// interests, and spreading activation over the concept map. Users with no
// active workpad fall back to interests alone.
func (e *Engine) ContextVector(userID string) textindex.Vector {
	v := make(textindex.Vector)
	u, err := e.store.User(userID)
	if err != nil {
		return v
	}
	for _, t := range textindex.Terms(joinStrings(u.Interests)) {
		v[t] += 1
	}
	wp, err := e.store.ActiveWorkpad(userID)
	if err == nil {
		var seeds []string
		for _, item := range wp.Items {
			text := e.entityText(item.Kind, item.Ref)
			tf := textindex.TermFrequency(text)
			v.Add(tf, 2) // workpad items dominate the context
			seeds = append(seeds, topSurfaceTerms(text, 3)...)
		}
		// Propagate through the concept map so related-but-unmentioned
		// concepts enter the context (§2.3 adaptation strategies).
		if e.concepts.Len() > 0 && len(seeds) > 0 {
			act := e.concepts.Activate(seeds)
			cv := conceptVector(act)
			v.Add(cv, 0.5)
		}
	}
	return v
}

func conceptVector(activation map[string]float64) textindex.Vector {
	v := make(textindex.Vector, len(activation))
	for term, w := range activation {
		if w > 0 {
			v[textindex.Stem(term)] += w
		}
	}
	// Normalize so activation cannot swamp the direct workpad terms.
	if n := v.Norm(); n > 0 {
		for t := range v {
			v[t] /= n
		}
	}
	return v
}

func topSurfaceTerms(text string, k int) []string {
	kps := textindex.ExtractKeyphrases(text, k)
	out := make([]string, 0, len(kps))
	for _, kp := range kps {
		out = append(out, kp.Term)
	}
	return out
}

func joinStrings(xs []string) string {
	out := ""
	for _, x := range xs {
		out += x + ". "
	}
	return out
}

// SearchResult is a scored document hit.
type SearchResult struct {
	DocID string
	Score float64
}

// Search runs plain BM25 keyword search over all indexed content.
func (e *Engine) Search(query string, k int) []SearchResult {
	return toSearchResults(e.index.Search(query, k))
}

// SearchWithContext blends BM25 relevance with similarity to the user's
// current context: score = bm25 × (1 + ctxWeight × cosine(doc, context)).
// This is the §2.3 "filter, summarize, and rank alternatives and adapt
// according to their relevance" service.
func (e *Engine) SearchWithContext(userID, query string, k int) []SearchResult {
	ctx := e.ContextVector(userID)
	base := e.index.Search(query, 4*k)
	if len(ctx) == 0 {
		return toSearchResults(clip(base, k))
	}
	const ctxWeight = 1.0
	rescored := make([]textindex.Result, len(base))
	for i, r := range base {
		sim := 0.0
		if dv, err := e.index.TFIDFVector(r.DocID); err == nil {
			sim = dv.Cosine(ctx)
		}
		rescored[i] = textindex.Result{DocID: r.DocID, Score: r.Score * (1 + ctxWeight*sim)}
	}
	sort.Slice(rescored, func(i, j int) bool {
		if rescored[i].Score != rescored[j].Score {
			return rescored[i].Score > rescored[j].Score
		}
		return rescored[i].DocID < rescored[j].DocID
	})
	return toSearchResults(clip(rescored, k))
}

// Preview extracts the k most context-relevant snippets from a document
// (paper §2.3(a): "relevant snippet extraction from documents"). The
// docID uses the index namespace (e.g. "pres/<id>", "paper/<id>").
func (e *Engine) Preview(userID, docID string, k int) ([]textindex.Snippet, error) {
	text, err := e.index.Text(docID)
	if err != nil {
		return nil, err
	}
	ctx := e.ContextVector(userID)
	return textindex.ExtractSnippets(text, ctx, k), nil
}

// Annotate extracts the top-k key concepts of a document for automated
// annotation (§2.3(b)).
func (e *Engine) Annotate(docID string, k int) ([]textindex.Keyphrase, error) {
	text, err := e.index.Text(docID)
	if err != nil {
		return nil, err
	}
	return textindex.ExtractKeyphrases(text, k), nil
}

// UpdateDigest produces the size-constrained summary of the user's feed
// (the "scheduled update reports" of §2.3, summarized with AlphaSum).
// Columns: actor, verb, target kind; the target-kind column generalizes
// through a small entity-type hierarchy.
func (e *Engine) UpdateDigest(userID string, budget int) (*summarize.Summary, error) {
	feed := e.store.Feed(userID, 0)
	tab := &summarize.Table{Columns: []string{"actor", "verb", "target"}}
	for _, ev := range feed {
		tab.Rows = append(tab.Rows, []string{ev.Actor, ev.Verb, e.targetKind(ev.Object)})
	}
	h, err := summarize.NewHierarchy(map[string]string{
		"paper": "content", "presentation": "content", "question": "content",
		"session": "venue", "conference": "venue",
		"user": "people", "other": summarize.Root,
		"content": summarize.Root, "venue": summarize.Root, "people": summarize.Root,
	})
	if err != nil {
		return nil, err
	}
	s := summarize.NewSummarizer(tab.Columns, map[string]*summarize.Hierarchy{"target": h})
	return s.Greedy(tab, budget)
}

// targetKind classifies an entity ID into the digest type hierarchy.
func (e *Engine) targetKind(entity string) string {
	if entity == "" {
		return "other"
	}
	if _, err := e.store.Paper(entity); err == nil {
		return "paper"
	}
	if _, err := e.store.Presentation(entity); err == nil {
		return "presentation"
	}
	if _, err := e.store.Question(entity); err == nil {
		return "question"
	}
	if _, err := e.store.Session(entity); err == nil {
		return "session"
	}
	if _, err := e.store.Conference(entity); err == nil {
		return "conference"
	}
	if _, err := e.store.User(entity); err == nil {
		return "user"
	}
	return "other"
}

func toSearchResults(rs []textindex.Result) []SearchResult {
	out := make([]SearchResult, len(rs))
	for i, r := range rs {
		out[i] = SearchResult{DocID: r.DocID, Score: r.Score}
	}
	return out
}

func clip(rs []textindex.Result, k int) []textindex.Result {
	if k > 0 && len(rs) > k {
		return rs[:k]
	}
	return rs
}

// DetectOverlap reports content-reuse between two indexed documents via
// shingle resemblance and containment ([9]).
func (e *Engine) DetectOverlap(docA, docB string) (resemblance, containAinB float64, err error) {
	ta, err := e.index.Text(docA)
	if err != nil {
		return 0, 0, err
	}
	tb, err := e.index.Text(docB)
	if err != nil {
		return 0, 0, err
	}
	sa := textindex.Shingles(ta, 3)
	sb := textindex.Shingles(tb, 3)
	return textindex.Resemblance(sa, sb), textindex.Containment(sa, sb), nil
}

// WorkpadOf returns the user's active workpad items (empty when none).
func (e *Engine) WorkpadOf(userID string) []social.WorkpadItem {
	wp, err := e.store.ActiveWorkpad(userID)
	if err != nil {
		return nil
	}
	return wp.Items
}
