// Package align implements Hive's network layer alignment and integration
// (paper §2.2, Figure 3). The "context network" is a stack of layers —
// social connections, co-authorship, citations, concept maps, session
// co-attendance — whose node vocabularies only partially overlap and may
// use different surface forms for the same entity. Alignment identifies
// cross-layer mappings (lexical + structural evidence, producing *imprecise*
// scored matches as the paper stresses); integration merges the aligned
// layers into a single weighted graph where agreeing layers reinforce an
// edge and disagreeing layers leave it weak.
package align

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"hive/internal/graph"
	"hive/internal/textindex"
)

// ErrNoLayers is returned when integrating an empty layer set.
var ErrNoLayers = errors.New("align: no layers")

// Layer is one knowledge layer: a named graph with a trust factor that
// scales its edges' contribution to the integrated network.
type Layer struct {
	Name  string
	Trust float64 // in (0, 1]; defaults to 1 when zero
	G     *graph.Graph
}

func (l *Layer) trust() float64 {
	if l.Trust <= 0 || l.Trust > 1 {
		return 1
	}
	return l.Trust
}

// Mapping is a scored correspondence between a node of layer A and a node
// of layer B.
type Mapping struct {
	A, B  string
	Score float64
}

// Options tunes the aligner.
type Options struct {
	// MinLexical is the minimum lexical similarity for a candidate pair.
	// Defaults to 0.5.
	MinLexical float64
	// LexicalWeight is the weight of lexical vs structural similarity in
	// the final score. Defaults to 0.6.
	LexicalWeight float64
	// MinScore drops final mappings below this confidence. Defaults to
	// 0.3.
	MinScore float64
}

func (o Options) withDefaults() Options {
	if o.MinLexical == 0 {
		o.MinLexical = 0.5
	}
	if o.LexicalWeight == 0 {
		o.LexicalWeight = 0.6
	}
	if o.MinScore == 0 {
		o.MinScore = 0.3
	}
	return o
}

// LexicalSimilarity measures surface similarity of two node keys: token
// Jaccard over the stemmed tokens, with exact match scoring 1. Keys like
// "large-scale graph processing" and "graph processing at large scale"
// align even though the strings differ.
func LexicalSimilarity(a, b string) float64 {
	if a == b {
		return 1
	}
	ta := tokenSet(a)
	tb := tokenSet(b)
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	inter := 0
	for t := range ta {
		if tb[t] {
			inter++
		}
	}
	union := len(ta) + len(tb) - inter
	return float64(inter) / float64(union)
}

func tokenSet(s string) map[string]bool {
	set := map[string]bool{}
	for _, t := range textindex.Tokenize(s) {
		set[textindex.Stem(t)] = true
	}
	return set
}

// Align computes scored mappings between two layers. Candidates pass a
// lexical prefilter; each candidate's final score mixes lexical
// similarity with the Jaccard overlap of its already-lexically-anchored
// neighborhoods (one round of structural refinement). Greedy one-to-one
// matching keeps the best mapping per node. The result is imprecise by
// design — scores, not booleans.
func Align(a, b *Layer, opts Options) []Mapping {
	opts = opts.withDefaults()
	type cand struct {
		a, b string
		lex  float64
	}
	var cands []cand
	// Anchor set: exact-key matches, used for structural scoring.
	anchors := map[string]string{}
	bKeys := make([]string, 0, b.G.NumNodes())
	b.G.Nodes(func(n graph.Node) bool {
		bKeys = append(bKeys, n.Key)
		return true
	})
	a.G.Nodes(func(n graph.Node) bool {
		for _, bk := range bKeys {
			lex := LexicalSimilarity(n.Key, bk)
			if lex >= opts.MinLexical {
				cands = append(cands, cand{n.Key, bk, lex})
				if lex == 1 {
					anchors[n.Key] = bk
				}
			}
		}
		return true
	})

	neighborsOf := func(l *Layer, key string) map[string]bool {
		out := map[string]bool{}
		id := l.G.Lookup(key)
		for _, nb := range l.G.Neighbors(id) {
			n, err := l.G.Node(nb)
			if err == nil {
				out[n.Key] = true
			}
		}
		return out
	}

	var mappings []Mapping
	for _, c := range cands {
		na := neighborsOf(a, c.a)
		nb := neighborsOf(b, c.b)
		// Structural similarity: fraction of a-neighbors whose anchor
		// lands in b's neighborhood.
		inter, denom := 0, 0
		for ak := range na {
			bk, ok := anchors[ak]
			if !ok {
				continue
			}
			denom++
			if nb[bk] {
				inter++
			}
		}
		structural := 0.0
		if denom > 0 {
			structural = float64(inter) / float64(denom)
		}
		score := opts.LexicalWeight*c.lex + (1-opts.LexicalWeight)*structural
		if score >= opts.MinScore {
			mappings = append(mappings, Mapping{A: c.a, B: c.b, Score: score})
		}
	}
	// Greedy one-to-one: best score first.
	sort.Slice(mappings, func(i, j int) bool {
		if mappings[i].Score != mappings[j].Score {
			return mappings[i].Score > mappings[j].Score
		}
		if mappings[i].A != mappings[j].A {
			return mappings[i].A < mappings[j].A
		}
		return mappings[i].B < mappings[j].B
	})
	usedA, usedB := map[string]bool{}, map[string]bool{}
	var out []Mapping
	for _, m := range mappings {
		if usedA[m.A] || usedB[m.B] {
			continue
		}
		usedA[m.A] = true
		usedB[m.B] = true
		out = append(out, m)
	}
	return out
}

// Integrated is the merged multi-layer context network.
type Integrated struct {
	// G is the merged graph. Node keys are canonical keys; edges carry
	// the label "layer/<name>/<original label>" per source layer plus a
	// combined "integrated" edge whose weight is the noisy-OR of the
	// trust-scaled layer weights.
	G *graph.Graph
	// Canonical maps "<layer>/<key>" to the canonical node key.
	Canonical map[string]string
}

// EdgeIntegrated is the label of combined edges.
const EdgeIntegrated = "integrated"

// Integrate merges layers into one context network. Cross-layer node
// identity comes from aligning every later layer against the first
// (reference) layer with the given options; unaligned nodes keep their
// own key. Edge weights are first normalized per layer to (0, 1] by the
// layer's maximum weight, scaled by trust, then combined across layers by
// noisy-OR — two layers asserting the same relationship reinforce it,
// while a relationship seen in only one (possibly conflicting) layer
// stays weaker.
func Integrate(layers []*Layer, opts Options) (*Integrated, error) {
	if len(layers) == 0 {
		return nil, ErrNoLayers
	}
	canonical := map[string]string{}
	ref := layers[0]
	ref.G.Nodes(func(n graph.Node) bool {
		canonical[ref.Name+"/"+n.Key] = n.Key
		return true
	})
	for _, l := range layers[1:] {
		maps := Align(l, ref, opts)
		mapped := map[string]string{}
		for _, m := range maps {
			mapped[m.A] = m.B
		}
		l.G.Nodes(func(n graph.Node) bool {
			if ck, ok := mapped[n.Key]; ok {
				canonical[l.Name+"/"+n.Key] = ck
			} else {
				canonical[l.Name+"/"+n.Key] = n.Key
			}
			return true
		})
	}

	out := graph.New()
	// Materialize nodes.
	for _, l := range layers {
		l.G.Nodes(func(n graph.Node) bool {
			out.EnsureNode(canonical[l.Name+"/"+n.Key], n.Label)
			return true
		})
	}
	// Per-layer edges plus noisy-OR accumulation.
	type pair struct{ from, to graph.NodeID }
	combined := map[pair]float64{} // 1 - prod(1 - w_i)
	for _, l := range layers {
		maxW := 0.0
		l.G.Nodes(func(n graph.Node) bool {
			for _, e := range l.G.Out(n.ID) {
				if e.Weight > maxW {
					maxW = e.Weight
				}
			}
			return true
		})
		if maxW == 0 {
			continue
		}
		l.G.Nodes(func(n graph.Node) bool {
			fromKey := canonical[l.Name+"/"+n.Key]
			from := out.Lookup(fromKey)
			for _, e := range l.G.Out(n.ID) {
				toNode, err := l.G.Node(e.To)
				if err != nil {
					continue
				}
				to := out.Lookup(canonical[l.Name+"/"+toNode.Key])
				if from == to {
					continue
				}
				w := (e.Weight / maxW) * l.trust()
				_ = out.AddEdge(from, to, "layer/"+l.Name+"/"+e.Label, w)
				p := pair{from, to}
				prev := combined[p]
				combined[p] = 1 - (1-prev)*(1-w)
			}
			return true
		})
	}
	for p, w := range combined {
		_ = out.AddEdge(p.from, p.to, EdgeIntegrated, w)
	}
	return &Integrated{G: out, Canonical: canonical}, nil
}

// Resolve maps a layer-local key to its canonical key in the integrated
// network ("" when unknown).
func (in *Integrated) Resolve(layer, key string) string {
	return in.Canonical[layer+"/"+key]
}

// Agreement quantifies cross-layer reinforcement vs conflict for two
// layers inside an integrated network: Reinforced counts canonical edges
// asserted by both layers; Conflicting counts edges asserted by exactly
// one layer although both endpoints exist in both layers (the layers
// disagree about the relationship).
type Agreement struct {
	Reinforced  int
	Conflicting int
}

// Agree computes the Agreement between two named layers of the
// integration.
func (in *Integrated) Agree(layers []*Layer, aName, bName string) Agreement {
	var la, lb *Layer
	for _, l := range layers {
		switch l.Name {
		case aName:
			la = l
		case bName:
			lb = l
		}
	}
	if la == nil || lb == nil {
		return Agreement{}
	}
	edgesOf := func(l *Layer) map[string]bool {
		set := map[string]bool{}
		l.G.Nodes(func(n graph.Node) bool {
			from := in.Resolve(l.Name, n.Key)
			for _, e := range l.G.Out(n.ID) {
				toNode, err := l.G.Node(e.To)
				if err != nil {
					continue
				}
				set[from+"\x00"+in.Resolve(l.Name, toNode.Key)] = true
			}
			return true
		})
		return set
	}
	nodesOf := func(l *Layer) map[string]bool {
		set := map[string]bool{}
		l.G.Nodes(func(n graph.Node) bool {
			set[in.Resolve(l.Name, n.Key)] = true
			return true
		})
		return set
	}
	ea, eb := edgesOf(la), edgesOf(lb)
	na, nb := nodesOf(la), nodesOf(lb)
	var ag Agreement
	for e := range ea {
		if eb[e] {
			ag.Reinforced++
			continue
		}
		parts := strings.SplitN(e, "\x00", 2)
		if len(parts) == 2 && nb[parts[0]] && nb[parts[1]] {
			ag.Conflicting++
		}
	}
	for e := range eb {
		if ea[e] {
			continue // already counted as reinforced
		}
		parts := strings.SplitN(e, "\x00", 2)
		if len(parts) == 2 && na[parts[0]] && na[parts[1]] {
			ag.Conflicting++
		}
	}
	return ag
}

// String describes the integration for logs.
func (in *Integrated) String() string {
	return fmt.Sprintf("integrated(%d nodes, %d edges)", in.G.NumNodes(), in.G.NumEdges())
}
