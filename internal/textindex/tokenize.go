// Package textindex is Hive's text analysis and retrieval engine. It
// supports the paper's content services: TF-IDF document vectors and an
// inverted index for search (§2.3), key-concept extraction for automated
// annotation and concept-map bootstrapping (§2.1, [10]), context-aware
// snippet extraction ([14]), and shingle-based overlap/content-reuse
// detection for user-supplied content ([9]).
package textindex

import (
	"strings"
	"unicode"
)

// Tokenize lowercases text and splits it into alphanumeric tokens,
// dropping everything else. Hyphenated terms split into their parts.
func Tokenize(text string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// stopwords is a compact English stopword list adequate for scientific
// abstracts and Q&A text.
var stopwords = map[string]bool{
	"a": true, "about": true, "above": true, "after": true, "again": true,
	"all": true, "also": true, "am": true, "an": true, "and": true,
	"any": true, "are": true, "as": true, "at": true, "be": true,
	"because": true, "been": true, "before": true, "being": true,
	"below": true, "between": true, "both": true, "but": true, "by": true,
	"can": true, "cannot": true, "could": true, "did": true, "do": true,
	"does": true, "doing": true, "down": true, "during": true, "each": true,
	"few": true, "for": true, "from": true, "further": true, "had": true,
	"has": true, "have": true, "having": true, "he": true, "her": true,
	"here": true, "hers": true, "him": true, "his": true, "how": true,
	"i": true, "if": true, "in": true, "into": true, "is": true, "it": true,
	"its": true, "itself": true, "just": true, "may": true, "me": true,
	"more": true, "most": true, "my": true, "no": true, "nor": true,
	"not": true, "now": true, "of": true, "off": true, "on": true,
	"once": true, "only": true, "or": true, "other": true, "our": true,
	"ours": true, "out": true, "over": true, "own": true, "s": true,
	"same": true, "she": true, "should": true, "so": true, "some": true,
	"such": true, "t": true, "than": true, "that": true, "the": true,
	"their": true, "theirs": true, "them": true, "then": true,
	"there": true, "these": true, "they": true, "this": true,
	"those": true, "through": true, "to": true, "too": true, "under": true,
	"until": true, "up": true, "very": true, "was": true, "we": true,
	"were": true, "what": true, "when": true, "where": true, "which": true,
	"while": true, "who": true, "whom": true, "why": true, "will": true,
	"with": true, "would": true, "you": true, "your": true, "yours": true,
	"using": true, "used": true, "use": true, "based": true, "via": true,
	"paper": true, "propose": true, "proposed": true, "approach": true,
	"show": true, "shows": true, "present": true, "presents": true,
	"however": true, "et": true, "al": true,
}

// IsStopword reports whether the token is on the stopword list.
func IsStopword(tok string) bool { return stopwords[tok] }

// Terms tokenizes, removes stopwords and single-character tokens, and
// stems the remainder. This is the canonical analysis chain used by every
// Hive text service.
func Terms(text string) []string {
	toks := Tokenize(text)
	out := toks[:0]
	for _, t := range toks {
		if len(t) < 2 || stopwords[t] {
			continue
		}
		out = append(out, Stem(t))
	}
	return out
}

// RawTerms is like Terms but keeps the unstemmed surface forms; concept
// extraction uses it so that displayed concepts stay readable.
func RawTerms(text string) []string {
	toks := Tokenize(text)
	out := toks[:0]
	for _, t := range toks {
		if len(t) < 2 || stopwords[t] {
			continue
		}
		out = append(out, t)
	}
	return out
}
