package textindex

// Scatter-gather search support. A sharded deployment holds N disjoint
// Segmented views, one per shard; BM25 scores depend on corpus-wide
// statistics (document frequency, corpus size, average length), so a
// shard cannot rank its documents alone and stay comparable across
// shards. The protocol is two-phase: the coordinator gathers each
// shard's CorpusStats for the query's terms, sums them with MergeStats,
// then has every shard score its local postings under the merged global
// statistics via SearchStats. A document's BM25 score is a pure function
// of its own postings plus those global statistics, and the shards
// partition the corpus, so the fan-out reproduces an unsharded build's
// scores bit for bit — the same parity discipline Segmented itself keeps
// against full rebuilds.

// CorpusStats are the corpus-wide aggregates BM25 needs, restricted to
// the terms of one query. All fields are integer counts, so cross-shard
// merging is exact (no float summation order to worry about).
type CorpusStats struct {
	// Docs and TotalLen count live documents and their tokens.
	Docs     int
	TotalLen int
	// DF maps each requested term to its live document frequency. Terms
	// absent from the corpus carry 0 entries (or are simply absent).
	DF map[string]int
}

// Stats reports this view's contribution to the global statistics for
// the given terms.
func (s *Segmented) Stats(terms []string) CorpusStats {
	st := CorpusStats{Docs: s.nDocs, TotalLen: s.totalLen, DF: make(map[string]int, len(terms))}
	for _, t := range terms {
		if _, ok := st.DF[t]; ok {
			continue
		}
		st.DF[t] = s.df(t)
	}
	return st
}

// MergeStats sums per-shard statistics into the global view. Shards
// hold disjoint documents, so plain addition is exact.
func MergeStats(parts []CorpusStats) CorpusStats {
	g := CorpusStats{DF: make(map[string]int)}
	for _, p := range parts {
		g.Docs += p.Docs
		g.TotalLen += p.TotalLen
		for t, df := range p.DF {
			g.DF[t] += df
		}
	}
	return g
}

// SearchStats ranks this view's documents against the query under the
// supplied global statistics instead of the view's own. It mirrors
// Search expression for expression — same IDF formula, same BM25
// accumulation order over base postings then overlay postings — so a
// document scores identically whether its shard or an unsharded build
// ranks it. The pristine fast path is deliberately not taken: the
// base's precomputed IDFs are local, not global.
func (s *Segmented) SearchStats(query string, k int, g CorpusStats) []Result {
	if g.Docs == 0 || s.nDocs == 0 {
		return nil
	}
	avgLen := float64(g.TotalLen) / float64(g.Docs)
	if avgLen == 0 {
		avgLen = 1
	}
	scores := make(map[string]float64)
	for _, term := range Terms(query) {
		df := g.DF[term]
		if df == 0 {
			continue
		}
		idf := idfFor(df, g.Docs)
		if ti, ok := s.base.terms[term]; ok {
			for j := ti.off; j < ti.off+ti.n; j++ {
				d := s.base.postDoc[j]
				id := s.base.ids[d]
				if _, gone := s.dead[id]; gone {
					continue
				}
				tf := float64(s.base.postTF[j])
				dl := float64(s.base.docLen[d])
				scores[id] += idf * tf * (bm25K1 + 1) /
					(tf + bm25K1*(1-bm25B+bm25B*dl/avgLen))
			}
		}
		for _, p := range s.overPost[term] {
			tf := float64(p.tf)
			dl := float64(s.over[p.doc].length)
			scores[p.doc] += idf * tf * (bm25K1 + 1) /
				(tf + bm25K1*(1-bm25B+bm25B*dl/avgLen))
		}
	}
	return topResults(scores, k)
}
