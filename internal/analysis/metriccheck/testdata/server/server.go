// Package server exercises the closed-registry rule at metric
// registration sites.
package server

import "metrictest/internal/metrics"

// localName is declared outside the metrics registry: the exposition
// surface stops being greppable in one file.
const localName = "server_requests_total"

type notRegistry struct{}

func (notRegistry) Counter(name, help string) int { return 0 }

func register() {
	_ = metrics.Default.Counter(metrics.HTTPRequestsTotal, "clean: registry constant")
	_ = metrics.Default.Histogram(metrics.SearchSeconds, "clean too", nil)
	_ = metrics.Default.Counter("hive_adhoc_total", "raw")           // want `raw-string metric name`
	_ = metrics.Default.Gauge(localName, "local constant")           // want `not declared in the metrics package`
	_ = metrics.Default.CounterVec("hive_vec_total", "raw", "route") // want `raw-string metric name`

	//lint:allow metriccheck migration shim: dashboard still scrapes the legacy name
	_ = metrics.Default.Counter("legacy_total", "allowed")

	// Dynamic values pass: provenance is not tracked.
	name := "hive_dynamic_total"
	_ = metrics.Default.Counter(name, "dynamic")

	// Same method name on an unrelated receiver is not a registration.
	_ = notRegistry{}.Counter("whatever", "not a registry")
}
