// Package community implements Hive's community discovery and tracking
// service (Table 1): label propagation and greedy modularity maximization
// for discovery, and Jaccard-based matching for tracking how communities
// evolve between snapshots (conference editions).
package community

import (
	"math/rand"
	"sort"

	"hive/internal/graph"
)

// Community is a set of node IDs.
type Community []graph.NodeID

// Detect partitions the graph with Louvain-style local moving: starting
// from singleton communities, nodes greedily move to the neighboring
// community with the largest modularity gain until a fixpoint. Returns
// communities largest first; deterministic given the seed. Isolated
// nodes form singleton communities. Edge direction is ignored (evidence
// layers are symmetric).
func Detect(g *graph.Graph, seed int64) []Community {
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))

	// Symmetrized adjacency: every directed edge contributes to both
	// endpoints. (Undirected layers store both arcs; the uniform factor
	// of two cancels in modularity comparisons.)
	adj := make([]map[int]float64, n)
	for i := range adj {
		adj[i] = map[int]float64{}
	}
	deg := make([]float64, n) // weighted degree
	var m2 float64            // sum of all degrees
	for i := 0; i < n; i++ {
		for _, e := range g.Out(graph.NodeID(i)) {
			j := int(e.To)
			if j == i {
				continue
			}
			adj[i][j] += e.Weight
			adj[j][i] += e.Weight
		}
	}
	for i := range adj {
		for _, w := range adj[i] {
			deg[i] += w
		}
		m2 += deg[i]
	}

	labels := make([]int, n)
	for i := range labels {
		labels[i] = i
	}
	if m2 > 0 {
		commDeg := make([]float64, n) // total degree per community label
		copy(commDeg, deg)
		order := rng.Perm(n)
		for round := 0; round < 50; round++ {
			changed := false
			for _, i := range order {
				cur := labels[i]
				// Weight from i to each neighboring community.
				wTo := map[int]float64{}
				for j, w := range adj[i] {
					wTo[labels[j]] += w
				}
				commDeg[cur] -= deg[i] // detach i
				bestC, bestGain := cur, wTo[cur]-deg[i]*commDeg[cur]/m2
				cands := make([]int, 0, len(wTo))
				for c := range wTo {
					cands = append(cands, c)
				}
				sort.Ints(cands)
				for _, c := range cands {
					gain := wTo[c] - deg[i]*commDeg[c]/m2
					if gain > bestGain+1e-12 {
						bestGain, bestC = gain, c
					}
				}
				commDeg[bestC] += deg[i]
				if bestC != cur {
					labels[i] = bestC
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
	byLabel := map[int]Community{}
	for i, l := range labels {
		byLabel[l] = append(byLabel[l], graph.NodeID(i))
	}
	comms := make([]Community, 0, len(byLabel))
	for _, c := range byLabel {
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
		comms = append(comms, c)
	}
	sort.Slice(comms, func(i, j int) bool {
		if len(comms[i]) != len(comms[j]) {
			return len(comms[i]) > len(comms[j])
		}
		return comms[i][0] < comms[j][0]
	})
	return comms
}

// Modularity computes the weighted Newman modularity of a partition,
// treating the graph as undirected (summing both edge directions).
func Modularity(g *graph.Graph, comms []Community) float64 {
	commOf := map[graph.NodeID]int{}
	for ci, c := range comms {
		for _, id := range c {
			commOf[id] = ci
		}
	}
	var total float64 // total edge weight (directed sum)
	strength := make(map[graph.NodeID]float64)
	g.Nodes(func(n graph.Node) bool {
		for _, e := range g.Out(n.ID) {
			total += e.Weight
			strength[n.ID] += e.Weight
			strength[e.To] += e.Weight
		}
		return true
	})
	if total == 0 {
		return 0
	}
	m2 := 2 * total
	var q float64
	g.Nodes(func(n graph.Node) bool {
		for _, e := range g.Out(n.ID) {
			if commOf[n.ID] == commOf[e.To] {
				q += e.Weight / total
			}
		}
		return true
	})
	// Expected fraction under the configuration model.
	sumByComm := map[int]float64{}
	for id, s := range strength {
		sumByComm[commOf[id]] += s
	}
	for _, s := range sumByComm {
		q -= (s / m2) * (s / m2)
	}
	return q
}

// GreedyModularity merges communities greedily while modularity improves,
// starting from the label-propagation partition — a one-level
// Louvain-style refinement that repairs over-fragmentation.
func GreedyModularity(g *graph.Graph, seed int64) []Community {
	comms := Detect(g, seed)
	improved := true
	for improved && len(comms) > 1 {
		improved = false
		base := Modularity(g, comms)
		bestI, bestJ, bestQ := -1, -1, base
		// Only consider merging connected community pairs.
		adj := communityAdjacency(g, comms)
		for i := range comms {
			for j := range adj[i] {
				if j <= i {
					continue
				}
				merged := mergePartition(comms, i, j)
				if q := Modularity(g, merged); q > bestQ+1e-12 {
					bestQ, bestI, bestJ = q, i, j
				}
			}
		}
		if bestI >= 0 {
			comms = mergePartition(comms, bestI, bestJ)
			improved = true
		}
	}
	sort.Slice(comms, func(i, j int) bool {
		if len(comms[i]) != len(comms[j]) {
			return len(comms[i]) > len(comms[j])
		}
		return comms[i][0] < comms[j][0]
	})
	return comms
}

func communityAdjacency(g *graph.Graph, comms []Community) []map[int]bool {
	commOf := map[graph.NodeID]int{}
	for ci, c := range comms {
		for _, id := range c {
			commOf[id] = ci
		}
	}
	adj := make([]map[int]bool, len(comms))
	for i := range adj {
		adj[i] = map[int]bool{}
	}
	g.Nodes(func(n graph.Node) bool {
		for _, e := range g.Out(n.ID) {
			a, b := commOf[n.ID], commOf[e.To]
			if a != b {
				adj[a][b] = true
				adj[b][a] = true
			}
		}
		return true
	})
	return adj
}

func mergePartition(comms []Community, i, j int) []Community {
	out := make([]Community, 0, len(comms)-1)
	merged := append(append(Community{}, comms[i]...), comms[j]...)
	sort.Slice(merged, func(a, b int) bool { return merged[a] < merged[b] })
	for k, c := range comms {
		if k == i || k == j {
			continue
		}
		out = append(out, c)
	}
	return append(out, merged)
}

// Match tracks communities across two snapshots: for every community in
// prev it finds the community in next with the highest Jaccard overlap of
// node keys. Keys (not IDs) are matched because node IDs are not stable
// across graph rebuilds.
type Match struct {
	PrevIndex int
	NextIndex int // -1 when the community dissolved
	Jaccard   float64
}

// Track matches communities between snapshots. keysPrev and keysNext map
// node IDs to stable external keys for each graph.
func Track(prev, next []Community, keysPrev, keysNext func(graph.NodeID) string) []Match {
	nextSets := make([]map[string]bool, len(next))
	for i, c := range next {
		nextSets[i] = map[string]bool{}
		for _, id := range c {
			nextSets[i][keysNext(id)] = true
		}
	}
	matches := make([]Match, 0, len(prev))
	for pi, c := range prev {
		prevSet := map[string]bool{}
		for _, id := range c {
			prevSet[keysPrev(id)] = true
		}
		bestJ, bestIdx := 0.0, -1
		for ni, ns := range nextSets {
			inter := 0
			for k := range prevSet {
				if ns[k] {
					inter++
				}
			}
			union := len(prevSet) + len(ns) - inter
			if union == 0 {
				continue
			}
			j := float64(inter) / float64(union)
			if j > bestJ {
				bestJ, bestIdx = j, ni
			}
		}
		matches = append(matches, Match{PrevIndex: pi, NextIndex: bestIdx, Jaccard: bestJ})
	}
	return matches
}
