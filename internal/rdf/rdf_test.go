package rdf

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func add(t *testing.T, st *Store, s, p, o string, w float64) {
	t.Helper()
	if err := st.Add(Triple{s, p, o, w}); err != nil {
		t.Fatalf("Add(%s %s %s %v): %v", s, p, o, w, err)
	}
}

func TestAddAndWeight(t *testing.T) {
	st := NewStore()
	add(t, st, "alice", "coauthor", "bob", 0.8)
	w, ok := st.Weight("alice", "coauthor", "bob")
	if !ok || w != 0.8 {
		t.Fatalf("Weight = %v, %v", w, ok)
	}
	if _, ok := st.Weight("bob", "coauthor", "alice"); ok {
		t.Fatal("reverse triple should not exist")
	}
}

func TestAddKeepsMaxWeight(t *testing.T) {
	st := NewStore()
	add(t, st, "a", "p", "b", 0.5)
	add(t, st, "a", "p", "b", 0.3)
	if w, _ := st.Weight("a", "p", "b"); w != 0.5 {
		t.Fatalf("weight lowered to %v", w)
	}
	add(t, st, "a", "p", "b", 0.9)
	if w, _ := st.Weight("a", "p", "b"); w != 0.9 {
		t.Fatalf("weight not raised: %v", w)
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d", st.Len())
	}
}

func TestAddValidation(t *testing.T) {
	st := NewStore()
	if err := st.Add(Triple{"", "p", "o", 1}); !errors.Is(err, ErrBadTriple) {
		t.Fatalf("empty subject err = %v", err)
	}
	if err := st.Add(Triple{"s", "p", "o", 0}); !errors.Is(err, ErrBadTriple) {
		t.Fatalf("zero weight err = %v", err)
	}
	if err := st.Add(Triple{"s", "p", "o", -1}); !errors.Is(err, ErrBadTriple) {
		t.Fatalf("negative weight err = %v", err)
	}
	// Overweight clamps to 1.
	if err := st.Add(Triple{"s", "p", "o", 5}); err != nil {
		t.Fatal(err)
	}
	if w, _ := st.Weight("s", "p", "o"); w != 1 {
		t.Fatalf("weight not clamped: %v", w)
	}
}

func TestRemove(t *testing.T) {
	st := NewStore()
	add(t, st, "a", "p", "b", 1)
	st.Remove("a", "p", "b")
	if st.Len() != 0 {
		t.Fatalf("Len = %d", st.Len())
	}
	if got := st.Match(Pattern{Subject: "a"}); len(got) != 0 {
		t.Fatalf("index leak: %v", got)
	}
	st.Remove("a", "p", "b") // no-op
}

func buildFamily(t *testing.T) *Store {
	t.Helper()
	st := NewStore()
	add(t, st, "alice", "coauthor", "bob", 0.9)
	add(t, st, "alice", "cites", "paper1", 1)
	add(t, st, "bob", "cites", "paper1", 1)
	add(t, st, "bob", "coauthor", "carol", 0.6)
	add(t, st, "carol", "attends", "edbt13", 1)
	add(t, st, "alice", "attends", "edbt13", 0.8)
	return st
}

func TestMatchAllAccessPatterns(t *testing.T) {
	st := buildFamily(t)
	cases := []struct {
		name string
		p    Pattern
		want int
	}{
		{"spo exact", Pattern{Subject: "alice", Predicate: "coauthor", Object: "bob"}, 1},
		{"sp", Pattern{Subject: "alice", Predicate: "cites"}, 1},
		{"so", Pattern{Subject: "alice", Object: "edbt13"}, 1},
		{"po", Pattern{Predicate: "cites", Object: "paper1"}, 2},
		{"s", Pattern{Subject: "alice"}, 3},
		{"p", Pattern{Predicate: "coauthor"}, 2},
		{"o", Pattern{Object: "edbt13"}, 2},
		{"all", Pattern{}, 6},
		{"none", Pattern{Subject: "nobody"}, 0},
	}
	for _, c := range cases {
		if got := st.Match(c.p); len(got) != c.want {
			t.Errorf("%s: got %d matches, want %d: %v", c.name, len(got), c.want, got)
		}
	}
}

func TestMatchMinWeight(t *testing.T) {
	st := buildFamily(t)
	got := st.Match(Pattern{Predicate: "coauthor", MinWeight: 0.7})
	if len(got) != 1 || got[0].Subject != "alice" {
		t.Fatalf("MinWeight filter = %v", got)
	}
}

func TestMatchSortedByWeight(t *testing.T) {
	st := buildFamily(t)
	got := st.Match(Pattern{})
	for i := 1; i < len(got); i++ {
		if got[i].Weight > got[i-1].Weight {
			t.Fatalf("not sorted by weight: %v", got)
		}
	}
}

func TestSubjects(t *testing.T) {
	st := buildFamily(t)
	subs := st.Subjects("attends")
	if len(subs) != 2 || subs[0] != "alice" || subs[1] != "carol" {
		t.Fatalf("Subjects = %v", subs)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	st := buildFamily(t)
	add(t, st, "weird\tsubject", "has\nnewline", "back\\slash", 0.5)
	var buf bytes.Buffer
	if _, err := st.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	st2 := NewStore()
	if _, err := st2.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if st2.Len() != st.Len() {
		t.Fatalf("round-trip Len = %d, want %d", st2.Len(), st.Len())
	}
	w, ok := st2.Weight("weird\tsubject", "has\nnewline", "back\\slash")
	if !ok || w != 0.5 {
		t.Fatalf("escaped triple lost: %v %v", w, ok)
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	st := NewStore()
	if _, err := st.ReadFrom(bytes.NewBufferString("not a triple\n")); !errors.Is(err, ErrBadTriple) {
		t.Fatalf("err = %v", err)
	}
	if _, err := st.ReadFrom(bytes.NewBufferString("a\tb\tc\tnotanumber\n")); !errors.Is(err, ErrBadTriple) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadFromSkipsBlankLines(t *testing.T) {
	st := NewStore()
	if _, err := st.ReadFrom(bytes.NewBufferString("\n\na\tb\tc\t0.5\n\n")); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d", st.Len())
	}
}

func TestQuerySingleLookup(t *testing.T) {
	st := buildFamily(t)
	sols := st.Query([]QueryPattern{{Subject: "?x", Predicate: "coauthor", Object: "?y"}})
	if len(sols) != 2 {
		t.Fatalf("got %d solutions: %v", len(sols), sols)
	}
	// Highest-weight edge first.
	if sols[0].Bindings["?x"] != "alice" || sols[0].Bindings["?y"] != "bob" {
		t.Fatalf("top solution = %v", sols[0])
	}
	if sols[0].Score != 0.9 {
		t.Fatalf("score = %v", sols[0].Score)
	}
}

func TestQueryJoin(t *testing.T) {
	st := buildFamily(t)
	// Who co-authored with someone attending edbt13?
	sols := st.Query([]QueryPattern{
		{Subject: "?a", Predicate: "coauthor", Object: "?b"},
		{Subject: "?b", Predicate: "attends", Object: "edbt13"},
	})
	if len(sols) != 1 {
		t.Fatalf("got %v", sols)
	}
	if sols[0].Bindings["?a"] != "bob" || sols[0].Bindings["?b"] != "carol" {
		t.Fatalf("join binding = %v", sols[0].Bindings)
	}
	if diff := sols[0].Score - 0.6; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("score = %v, want 0.6", sols[0].Score)
	}
}

func TestQuerySharedVariableConsistency(t *testing.T) {
	st := buildFamily(t)
	// ?x cites paper1 AND ?x attends edbt13 => only alice.
	sols := st.Query([]QueryPattern{
		{Subject: "?x", Predicate: "cites", Object: "paper1"},
		{Subject: "?x", Predicate: "attends", Object: "edbt13"},
	})
	if len(sols) != 1 || sols[0].Bindings["?x"] != "alice" {
		t.Fatalf("sols = %v", sols)
	}
}

func TestQueryNoMatch(t *testing.T) {
	st := buildFamily(t)
	sols := st.Query([]QueryPattern{{Subject: "?x", Predicate: "nonexistent", Object: "?y"}})
	if sols != nil {
		t.Fatalf("sols = %v", sols)
	}
	if got := st.Query(nil); got != nil {
		t.Fatalf("empty pattern list = %v", got)
	}
}

func TestQueryTopK(t *testing.T) {
	st := buildFamily(t)
	sols := st.QueryTopK([]QueryPattern{{Subject: "?x", Predicate: "?p", Object: "?y"}}, 3)
	if len(sols) != 3 {
		t.Fatalf("len = %d", len(sols))
	}
	for i := 1; i < len(sols); i++ {
		if sols[i].Score > sols[i-1].Score {
			t.Fatalf("not sorted: %v", sols)
		}
	}
}

func TestRankedPathsDirect(t *testing.T) {
	st := NewStore()
	add(t, st, "a", "p", "b", 0.5)
	paths := st.RankedPaths("a", "b", 3, PathOptions{})
	if len(paths) != 1 {
		t.Fatalf("paths = %v", paths)
	}
	if paths[0].Score != 0.5 || len(paths[0].Steps) != 1 {
		t.Fatalf("path = %+v", paths[0])
	}
	nodes := paths[0].Nodes()
	if len(nodes) != 2 || nodes[0] != "a" || nodes[1] != "b" {
		t.Fatalf("Nodes = %v", nodes)
	}
}

func TestRankedPathsPrefersStrongIndirect(t *testing.T) {
	st := NewStore()
	add(t, st, "a", "weak", "d", 0.2)
	add(t, st, "a", "strong", "b", 0.9)
	add(t, st, "b", "strong", "d", 0.9)
	paths := st.RankedPaths("a", "d", 2, PathOptions{})
	if len(paths) != 2 {
		t.Fatalf("got %d paths", len(paths))
	}
	if len(paths[0].Steps) != 2 {
		t.Fatalf("best path should be the 2-hop strong path: %+v", paths[0])
	}
	if diff := paths[0].Score - 0.81; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("best score = %v", paths[0].Score)
	}
}

func TestRankedPathsUndirected(t *testing.T) {
	st := NewStore()
	add(t, st, "b", "coauthor", "a", 0.9) // only reachable a->b via reverse
	if paths := st.RankedPaths("a", "b", 1, PathOptions{}); len(paths) != 0 {
		t.Fatalf("directed search should fail: %v", paths)
	}
	paths := st.RankedPaths("a", "b", 1, PathOptions{Undirected: true})
	if len(paths) != 1 || paths[0].Steps[0].Forward {
		t.Fatalf("undirected search = %+v", paths)
	}
	nodes := paths[0].Nodes()
	if nodes[0] != "a" || nodes[1] != "b" {
		t.Fatalf("Nodes = %v", nodes)
	}
}

func TestRankedPathsMaxLength(t *testing.T) {
	st := NewStore()
	add(t, st, "a", "p", "b", 1)
	add(t, st, "b", "p", "c", 1)
	add(t, st, "c", "p", "d", 1)
	if paths := st.RankedPaths("a", "d", 1, PathOptions{MaxLength: 2}); len(paths) != 0 {
		t.Fatalf("length bound violated: %v", paths)
	}
	if paths := st.RankedPaths("a", "d", 1, PathOptions{MaxLength: 3}); len(paths) != 1 {
		t.Fatalf("path not found within bound: %v", paths)
	}
}

func TestRankedPathsPredicateFilter(t *testing.T) {
	st := NewStore()
	add(t, st, "a", "spam", "b", 1)
	add(t, st, "a", "coauthor", "c", 0.5)
	add(t, st, "c", "coauthor", "b", 0.5)
	paths := st.RankedPaths("a", "b", 5, PathOptions{Predicates: []string{"coauthor"}})
	if len(paths) != 1 || len(paths[0].Steps) != 2 {
		t.Fatalf("predicate filter failed: %+v", paths)
	}
}

func TestRankedPathsLoopless(t *testing.T) {
	st := NewStore()
	add(t, st, "a", "p", "b", 0.9)
	add(t, st, "b", "p", "a", 0.9)
	add(t, st, "b", "p", "c", 0.5)
	paths := st.RankedPaths("a", "c", 10, PathOptions{MaxLength: 6})
	for _, p := range paths {
		seen := map[string]bool{}
		for _, n := range p.Nodes() {
			if seen[n] {
				t.Fatalf("loop in path %v", p.Nodes())
			}
			seen[n] = true
		}
	}
}

func TestRankedPathsSelfAndZero(t *testing.T) {
	st := buildFamily(t)
	if p := st.RankedPaths("alice", "alice", 3, PathOptions{}); p != nil {
		t.Fatalf("self paths = %v", p)
	}
	if p := st.RankedPaths("alice", "bob", 0, PathOptions{}); p != nil {
		t.Fatalf("k=0 paths = %v", p)
	}
}

func TestRankedPathsAgreesWithNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	st := NewStore()
	const n = 12
	for i := 0; i < 40; i++ {
		s := fmt.Sprintf("n%d", rng.Intn(n))
		o := fmt.Sprintf("n%d", rng.Intn(n))
		if s == o {
			continue
		}
		_ = st.Add(Triple{s, "p", o, 0.1 + 0.9*rng.Float64()})
	}
	got := st.RankedPaths("n0", "n5", 1, PathOptions{MaxLength: 4})
	want := st.AllPathsNaive("n0", "n5", 1, 4, false)
	if len(got) != len(want) {
		t.Fatalf("existence disagreement: ranked=%d naive=%d", len(got), len(want))
	}
	if len(got) == 1 {
		if diff := got[0].Score - want[0].Score; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("best score disagreement: ranked=%v naive=%v", got[0].Score, want[0].Score)
		}
	}
}

func TestPropMatchConsistentAcrossIndexes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := NewStore()
		type st3 struct{ s, p, o string }
		var all []st3
		for i := 0; i < 30; i++ {
			s := fmt.Sprintf("s%d", rng.Intn(5))
			p := fmt.Sprintf("p%d", rng.Intn(3))
			o := fmt.Sprintf("o%d", rng.Intn(5))
			if err := st.Add(Triple{s, p, o, rng.Float64()*0.9 + 0.1}); err != nil {
				return false
			}
			all = append(all, st3{s, p, o})
		}
		// Every added triple must be reachable through each access path.
		for _, tr := range all {
			if len(st.Match(Pattern{Subject: tr.s, Predicate: tr.p, Object: tr.o})) != 1 {
				return false
			}
			found := false
			for _, m := range st.Match(Pattern{Predicate: tr.p, Object: tr.o}) {
				if m.Subject == tr.s {
					found = true
				}
			}
			if !found {
				return false
			}
			found = false
			for _, m := range st.Match(Pattern{Object: tr.o}) {
				if m.Subject == tr.s && m.Predicate == tr.p {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropRankedPathsSortedAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := NewStore()
		for i := 0; i < 30; i++ {
			s := fmt.Sprintf("n%d", rng.Intn(8))
			o := fmt.Sprintf("n%d", rng.Intn(8))
			if s == o {
				continue
			}
			_ = st.Add(Triple{s, "p", o, rng.Float64()*0.9 + 0.1})
		}
		paths := st.RankedPaths("n0", "n7", 5, PathOptions{MaxLength: 4})
		if len(paths) > 5 {
			return false
		}
		for i, p := range paths {
			if p.Score <= 0 || p.Score > 1 {
				return false
			}
			if len(p.Steps) > 4 {
				return false
			}
			if i > 0 && p.Score > paths[i-1].Score+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReadWrite(t *testing.T) {
	st := NewStore()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 300; i++ {
			_ = st.Add(Triple{fmt.Sprintf("s%d", i%10), "p", "o", 0.5})
		}
	}()
	for i := 0; i < 300; i++ {
		st.Match(Pattern{Predicate: "p"})
		st.Len()
	}
	<-done
}
