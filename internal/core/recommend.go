package core

import (
	"fmt"

	"hive/internal/graph"
	"hive/internal/social"
	"hive/internal/tensor"
	"hive/internal/textindex"
	"hive/internal/topk"
)

// Recommendation services (paper §2.4): peer recommendation over the
// integrated network, peer-network based resource recommendation,
// session suggestion, and collaborative filtering.

// PeerRecommendation is a suggested new contact with its justification.
type PeerRecommendation struct {
	UserID string
	Score  float64
	// Evidences explains why (Figure 2 rendered for the suggestion).
	Evidences []Evidence
	// LikelySessions lists sessions the peer will probably attend (the
	// §1.1 scenario: "for each provides a list of sessions that the
	// researcher may most likely attend").
	LikelySessions []string
}

// RecommendPeers suggests up to k new peers for a user: personalized
// PageRank over the integrated peer network restarted at the user,
// biased by the active context (workpad members get restart mass too),
// excluding existing connections. The rank vector is memoized per user
// for the lifetime of the snapshot, so only a user's first request runs
// the power iteration.
func (e *Engine) RecommendPeers(userID string, k int) ([]PeerRecommendation, error) {
	me := e.peerGraph.Lookup(userID)
	if me == graph.Invalid {
		return nil, fmt.Errorf("%w: %s", ErrUnknownUser, userID)
	}
	pr := e.personalizedRankFor(userID, me)

	skip := map[graph.NodeID]bool{me: true}
	for _, c := range e.store.ConnectionsOf(userID) {
		if id := e.peerGraph.Lookup(c); id != graph.Invalid {
			skip[id] = true
		}
	}
	top := graph.TopK(pr, k, skip)
	recs := make([]PeerRecommendation, 0, len(top))
	for _, id := range top {
		n, err := e.peerGraph.Node(id)
		if err != nil || pr[id] == 0 {
			continue
		}
		ex, err := e.Explain(userID, n.Key)
		if err != nil {
			continue
		}
		recs = append(recs, PeerRecommendation{
			UserID:         n.Key,
			Score:          pr[id],
			Evidences:      ex.Evidences,
			LikelySessions: e.likelySessions(n.Key, 3),
		})
	}
	return recs, nil
}

// personalizedRankFor returns the user's personalized PageRank over the
// integrated peer network, memoized per snapshot (bounded, computed on
// first request). The restart bias comes from the snapshot's workpad
// table, so the memoized value is a pure function of (snapshot, user):
// misses compute outside the memo lock on a pooled workspace, concurrent
// first requests for different users run in parallel, and two racing
// computes for the same user produce identical results (the later store
// simply overwrites).
func (e *Engine) personalizedRankFor(userID string, me graph.NodeID) []float64 {
	e.pprMu.Lock()
	pr, ok := e.pprMemo[userID]
	e.pprMu.Unlock()
	if ok {
		return pr
	}

	restart := map[graph.NodeID]float64{me: 1}
	// Context bias: users pinned on the active workpad (as of the
	// snapshot build) pull the walk toward their neighborhoods.
	for _, ref := range e.workpadPeerRefs(userID) {
		if id := e.peerGraph.Lookup(ref); id != graph.Invalid {
			restart[id] = 0.5
		}
	}
	ws, _ := e.pprPool.Get().(*graph.PPRWorkspace)
	if ws == nil {
		ws = &graph.PPRWorkspace{}
	}
	pr = e.peerGraph.PersonalizedPageRankWith(ws, restart, graph.PageRankOptions{})
	e.pprPool.Put(ws)

	e.pprMu.Lock()
	if e.pprMemo != nil {
		if len(e.pprMemo) >= pprMemoMax {
			//lint:allow snapshotcheck pprMemo is a pprMu-guarded memo cache, not part of the published snapshot
			e.pprMemo = make(map[string][]float64, pprMemoMax)
		}
		//lint:allow snapshotcheck pprMemo is a pprMu-guarded memo cache, not part of the published snapshot
		e.pprMemo[userID] = pr
	}
	e.pprMu.Unlock()
	return pr
}

// workpadPeerRefs returns the users pinned on the user's active workpad
// from the snapshot table, overlay first (falling back to a live read
// only on engines built without phase-2 tables).
func (e *Engine) workpadPeerRefs(userID string) []string {
	if refs, ok := e.wpRefsOver[userID]; ok {
		return refs
	}
	if e.wpPeerRefs != nil {
		return e.wpPeerRefs[userID]
	}
	var refs []string
	for _, item := range e.WorkpadOf(userID) {
		if item.Kind == "user" {
			refs = append(refs, item.Ref)
		}
	}
	return refs
}

// likelySessions predicts the sessions a user will attend: sessions
// already checked into, then sessions whose content matches the user's
// context.
func (e *Engine) likelySessions(userID string, k int) []string {
	out := e.store.SessionsAttendedBy(userID)
	if len(out) >= k {
		return out[:k]
	}
	seen := toSet(out)
	ctx := e.ContextVector(userID)
	type ss struct {
		id    string
		score float64
	}
	h := topk.New[ss](k-len(out), func(a, b ss) bool {
		if a.score != b.score {
			return a.score > b.score
		}
		return a.id < b.id
	})
	for _, conf := range e.store.Conferences() {
		for _, sid := range e.store.SessionsOf(conf) {
			if seen[sid] {
				continue
			}
			text := e.entityText("session", sid)
			sim := textindex.TermFrequency(text).Cosine(ctx)
			if sim > 0 {
				h.Push(ss{sid, sim})
			}
		}
	}
	for _, s := range h.Sorted() {
		out = append(out, s.id)
	}
	return out
}

// SessionSuggestion is a scored session with the social signal behind it.
type SessionSuggestion struct {
	SessionID string
	Score     float64
	// FollowedAttendees are users the requester follows (or is connected
	// to) who checked in — the §1.1 trigger "a few of the researchers he
	// is following are checking-in into a session".
	FollowedAttendees []string
}

// SuggestSessions ranks the sessions of a conference for a user by
// combining the social signal (followed/connected attendees) with
// content similarity to the active context.
func (e *Engine) SuggestSessions(userID, confID string, k int) ([]SessionSuggestion, error) {
	if !e.store.HasUser(userID) {
		return nil, fmt.Errorf("%w: %s", ErrUnknownUser, userID)
	}
	circle := toSet(e.store.Following(userID))
	for _, c := range e.store.ConnectionsOf(userID) {
		circle[c] = true
	}
	ctx := e.ContextVector(userID)
	attended := toSet(e.store.SessionsAttendedBy(userID))

	h := topk.New[SessionSuggestion](k, func(a, b SessionSuggestion) bool {
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.SessionID < b.SessionID
	})
	for _, sid := range e.store.SessionsOf(confID) {
		if attended[sid] {
			continue
		}
		var followed []string
		for _, a := range e.store.Attendees(sid) {
			if circle[a] {
				followed = append(followed, a)
			}
		}
		text := e.entityText("session", sid)
		sim := textindex.TermFrequency(text).Cosine(ctx)
		score := 0.5*float64(len(followed)) + sim
		if score > 0 {
			h.Push(SessionSuggestion{SessionID: sid, Score: score, FollowedAttendees: followed})
		}
	}
	return h.Sorted(), nil
}

// ResourceRecommendation is a suggested paper/presentation.
type ResourceRecommendation struct {
	DocID string
	Score float64
}

// RecommendResources suggests documents for a user. With useContext the
// ranking is driven by the active-workpad context vector; without it (the
// E4 ablation) only the collaborative signal and popularity act.
func (e *Engine) RecommendResources(userID string, k int, useContext bool) ([]ResourceRecommendation, error) {
	if !e.store.HasUser(userID) {
		return nil, fmt.Errorf("%w: %s", ErrUnknownUser, userID)
	}
	scores := map[string]float64{}
	// Collaborative component: objects touched by similar users.
	for _, r := range e.RecommendByCF(userID, 3*k) {
		if kindOfDoc(r.DocID) != "" {
			scores[r.DocID] += 0.5 * r.Score
		}
	}
	if useContext {
		for _, r := range e.searchUserContext(userID, 3*k) {
			scores[r.DocID] += r.Score
		}
	} else {
		// Popularity fallback keeps the no-context arm non-degenerate.
		e.eachPopularity(func(doc string, n int) {
			scores[doc] += 0.01 * float64(n)
		})
	}
	// Never recommend the user's own content.
	own := toSet(e.store.PapersOfAuthor(userID))
	for _, pr := range e.store.PresentationsOfUser(userID) {
		own[pr] = true
	}
	h := topk.New[ResourceRecommendation](k, func(a, b ResourceRecommendation) bool {
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.DocID < b.DocID
	})
	for doc, s := range scores {
		if own[stripDocPrefix(doc)] {
			continue
		}
		h.Push(ResourceRecommendation{DocID: doc, Score: s})
	}
	return h.Sorted(), nil
}

func kindOfDoc(docID string) string {
	for _, p := range []string{DocPaper, DocPresentation, DocQuestion} {
		if len(docID) > len(p) && docID[:len(p)] == p {
			return p
		}
	}
	return ""
}

func stripDocPrefix(docID string) string {
	if k := kindOfDoc(docID); k != "" {
		return docID[len(k):]
	}
	return docID
}

// --- Collaborative filtering ---------------------------------------------------

// CFRecommendation is a collaboratively recommended object.
type CFRecommendation struct {
	DocID string
	Score float64
}

// verbWeight scores one activity verb's contribution to the actor's
// interaction vector: questions/answers/comments weigh more than
// passive check-ins.
var verbWeight = map[string]float64{
	"question": 2, "answer": 2, "comment": 1.5, "checkin": 1, "browse": 0.5,
}

// buildInteractionTables precomputes the collaborative-filtering inputs
// into the snapshot (Builder phase 2) in a single pass over the
// activity stream: per-user interaction vectors, raw object popularity,
// and the stream watermark (evtSeq) delta repairs resume from — the
// watermark is the highest sequence this scan actually folded in, so an
// event racing the build is applied exactly once, by the next delta.
func (e *Engine) buildInteractionTables() {
	vecs := map[string]textindex.Vector{}
	pop := map[string]int{}
	var maxSeq uint64
	for _, ev := range e.store.EventsSince(0, 0) {
		if ev.Seq > maxSeq {
			maxSeq = ev.Seq
		}
		applyActivity(vecs, pop, e, ev)
	}
	e.interVecs = vecs
	e.popularity = pop
	e.evtSeq = maxSeq
}

// applyActivity folds one activity event into interaction vectors and
// popularity counts — shared by the full build and the delta path so
// their arithmetic cannot drift.
func applyActivity(vecs map[string]textindex.Vector, pop map[string]int, e *Engine, ev social.Event) {
	doc := e.docIDForObject(ev.Object)
	if doc == "" {
		return
	}
	pop[doc]++
	w, ok := verbWeight[ev.Verb]
	if !ok || ev.Object == "" {
		return
	}
	v := vecs[ev.Actor]
	if v == nil {
		v = make(textindex.Vector)
		vecs[ev.Actor] = v
	}
	v[doc] += w
}

// interactionVectorOf returns one user's interaction vector, overlay
// first (computed live only on engines without phase-2 tables).
func (e *Engine) interactionVectorOf(u string) textindex.Vector {
	if v, ok := e.interOver[u]; ok {
		return v
	}
	if e.interVecs != nil {
		return e.interVecs[u]
	}
	vecs := map[string]textindex.Vector{}
	for _, ev := range e.store.EventsByActor(u) {
		applyActivity(vecs, map[string]int{}, e, ev)
	}
	return vecs[u]
}

// eachInteractionVector visits every user's interaction vector with the
// delta overlay merged in (overlay entries win).
func (e *Engine) eachInteractionVector(fn func(u string, v textindex.Vector)) {
	for u, v := range e.interOver {
		fn(u, v)
	}
	for u, v := range e.interVecs {
		if _, shadowed := e.interOver[u]; !shadowed {
			fn(u, v)
		}
	}
}

// docIDForObject maps an event object to an index doc ID when it is a
// recommendable resource.
func (e *Engine) docIDForObject(obj string) string {
	if _, err := e.store.Paper(obj); err == nil {
		return DocPaper + obj
	}
	if _, err := e.store.Presentation(obj); err == nil {
		return DocPresentation + obj
	}
	if q, err := e.store.Question(obj); err == nil {
		// Interacting with a question counts toward its target resource.
		return e.docIDForObject(q.Target)
	}
	return ""
}

// RecommendByCF performs user-based collaborative filtering: cosine
// similarity over interaction vectors, then objects scored by the
// similarity-weighted interactions of the neighbors (paper §2: peer
// networks "support each other ... indirectly through collaborative
// filtering").
func (e *Engine) RecommendByCF(userID string, k int) []CFRecommendation {
	mine := e.interactionVectorOf(userID)
	if mine == nil {
		return nil
	}
	type sim struct {
		user string
		s    float64
	}
	simBetter := func(a, b sim) bool {
		if a.s != b.s {
			return a.s > b.s
		}
		return a.user < b.user
	}
	neighbors := topk.New[sim](20, simBetter) // neighborhood size
	e.eachInteractionVector(func(u string, v textindex.Vector) {
		if u == userID {
			return
		}
		if s := mine.Cosine(v); s > 0 {
			neighbors.Push(sim{u, s})
		}
	})
	scores := map[string]float64{}
	for _, sm := range neighbors.Sorted() {
		for doc, w := range e.interactionVectorOf(sm.user) {
			if mine[doc] > 0 {
				continue // already interacted
			}
			scores[doc] += sm.s * w
		}
	}
	h := topk.New[CFRecommendation](k, cfBetter)
	for doc, s := range scores {
		h.Push(CFRecommendation{DocID: doc, Score: s})
	}
	return h.Sorted()
}

func cfBetter(a, b CFRecommendation) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.DocID < b.DocID
}

// RecommendByPopularity is the non-personalized baseline for E10: objects
// ranked by raw interaction count.
func (e *Engine) RecommendByPopularity(userID string, k int) []CFRecommendation {
	mine := e.interactionVectorOf(userID)
	h := topk.New[CFRecommendation](k, cfBetter)
	e.eachPopularity(func(doc string, n int) {
		if mine != nil && mine[doc] > 0 {
			return
		}
		h.Push(CFRecommendation{DocID: doc, Score: float64(n)})
	})
	return h.Sorted()
}

// eachPopularity visits every object's interaction count with the delta
// overlay merged in (overlay entries carry absolute counts and win).
func (e *Engine) eachPopularity(fn func(doc string, n int)) {
	pop := e.popularity
	if pop == nil {
		pop = e.computeObjectPopularity()
	}
	for doc, n := range e.popOver {
		fn(doc, n)
	}
	for doc, n := range pop {
		if _, shadowed := e.popOver[doc]; !shadowed {
			fn(doc, n)
		}
	}
}

// popularityOf returns one object's interaction count, overlay first.
func (e *Engine) popularityOf(doc string) int {
	if n, ok := e.popOver[doc]; ok {
		return n
	}
	return e.popularity[doc]
}

func (e *Engine) computeObjectPopularity() map[string]int {
	pop := map[string]int{}
	for _, ev := range e.store.EventsSince(0, 0) {
		if doc := e.docIDForObject(ev.Object); doc != "" {
			pop[doc]++
		}
	}
	return pop
}

// --- Activity change monitoring (SCENT over the platform) ----------------------

// ActivityTensorStream slices the activity stream into epochs of
// epochEvents events each and encodes every epoch as a (actor, verb,
// target-kind) count tensor — the multi-relational stream SCENT monitors
// (§2.4).
func (e *Engine) ActivityTensorStream(epochEvents int) ([]*tensor.Sparse, *tensor.Sketcher, error) {
	if epochEvents <= 0 {
		epochEvents = 100
	}
	events := e.store.EventsSince(0, 0)
	users := e.store.Users()
	userIdx := map[string]int{}
	for i, u := range users {
		userIdx[u] = i
	}
	verbs := []string{"checkin", "question", "answer", "comment", "connect", "follow", "browse", "upload"}
	verbIdx := map[string]int{}
	for i, v := range verbs {
		verbIdx[v] = i
	}
	kinds := []string{"paper", "presentation", "question", "session", "conference", "user", "other"}
	kindIdx := map[string]int{}
	for i, k := range kinds {
		kindIdx[k] = i
	}
	shape := []int{len(users), len(verbs), len(kinds)}
	if len(users) == 0 {
		return nil, nil, fmt.Errorf("core: no users for tensor stream")
	}
	var stream []*tensor.Sparse
	cur := tensor.MustSparse(shape...)
	n := 0
	for _, ev := range events {
		ui, ok := userIdx[ev.Actor]
		if !ok {
			continue
		}
		vi, ok := verbIdx[ev.Verb]
		if !ok {
			continue
		}
		ki := kindIdx[e.targetKind(ev.Object)]
		_ = cur.Add(1, ui, vi, ki)
		n++
		if n == epochEvents {
			stream = append(stream, cur)
			cur = tensor.MustSparse(shape...)
			n = 0
		}
	}
	if n > 0 {
		stream = append(stream, cur)
	}
	sk, err := tensor.NewSketcher(64, 1213, shape...)
	if err != nil {
		return nil, nil, err
	}
	return stream, sk, nil
}

// MonitorActivity runs SCENT change detection over the platform's own
// activity stream and returns the flagged epochs.
func (e *Engine) MonitorActivity(epochEvents int) ([]tensor.StreamResult, error) {
	stream, sk, err := e.ActivityTensorStream(epochEvents)
	if err != nil {
		return nil, err
	}
	return tensor.MonitorSketched(sk, stream, &tensor.Detector{})
}
