package metrics

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"time"
)

// Request tracing: the HTTP middleware mints (or adopts) a trace ID
// per request, carries a mutable *Trace through the request context,
// and hands the finished trace to a bounded Recorder. Handlers and the
// scatter-gather read path add named stages; the access log and error
// envelopes print the ID; GET /api/v1/debug/traces serves the slowest
// recent traces with their per-stage timings.
//
// Every *Trace method is nil-receiver safe, so instrumented code paths
// never need to check whether a trace is attached (background work —
// replication polls, compaction — runs traceless).

// NewTraceID returns a fresh 16-hex-char trace ID.
func NewTraceID() string {
	var buf [8]byte
	_, _ = rand.Read(buf[:])
	return hex.EncodeToString(buf[:])
}

// Stage is one named, timed step inside a trace.
type Stage struct {
	Name       string  `json:"name"`
	DurationUS float64 `json:"duration_us"`
}

// Trace accumulates one request's identity and stage timings. Safe for
// concurrent use (scatter-gather goroutines append stages in parallel).
type Trace struct {
	id     string
	method string
	start  time.Time

	mu     sync.Mutex
	shard  int
	stages []Stage
}

// NewTrace starts a trace. The shard is -1 until a handler resolves
// one.
func NewTrace(id, method string) *Trace {
	return &Trace{id: id, method: method, start: time.Now(), shard: -1}
}

// ID returns the trace ID ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// SetShard records the shard a handler resolved for this request.
func (t *Trace) SetShard(shard int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.shard = shard
	t.mu.Unlock()
}

// Shard returns the resolved shard, -1 while unresolved or nil.
func (t *Trace) Shard() int {
	if t == nil {
		return -1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.shard
}

// AddStage appends a completed stage.
func (t *Trace) AddStage(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.stages = append(t.stages, Stage{Name: name, DurationUS: float64(d.Nanoseconds()) / 1e3})
	t.mu.Unlock()
}

// StartStage starts a named stage; the returned func completes it.
func (t *Trace) StartStage(name string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.AddStage(name, time.Since(start)) }
}

// Finish freezes the trace into its recordable view.
func (t *Trace) Finish(route string, status int) TraceView {
	if t == nil {
		return TraceView{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return TraceView{
		ID:         t.id,
		Method:     t.method,
		Route:      route,
		Status:     status,
		Shard:      t.shard,
		StartedAt:  t.start.UTC(),
		DurationUS: float64(time.Since(t.start).Nanoseconds()) / 1e3,
		Stages:     append([]Stage(nil), t.stages...),
	}
}

// TraceView is the immutable, JSON-serializable form of a finished
// trace — the element type of the debug/traces response.
type TraceView struct {
	ID         string    `json:"trace_id"`
	Method     string    `json:"method"`
	Route      string    `json:"route"`
	Status     int       `json:"status"`
	Shard      int       `json:"shard"` // -1: no shard resolved
	StartedAt  time.Time `json:"started_at"`
	DurationUS float64   `json:"duration_us"`
	Stages     []Stage   `json:"stages,omitempty"`
}

// --- Context plumbing ---------------------------------------------------------

type traceCtxKey struct{}

// ContextWithTrace attaches t to ctx.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFrom returns the trace attached to ctx, or nil. All *Trace
// methods accept nil, so callers use the result unconditionally.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}

// --- Recorder -----------------------------------------------------------------

// Recorder keeps the last N finished traces in a ring. Slowest returns
// them ordered by duration, so the debug endpoint surfaces the worst
// recent requests without unbounded memory.
type Recorder struct {
	mu   sync.Mutex
	ring []TraceView
	next int
	n    int
}

// DefaultTraceCapacity is the ring size the server uses.
const DefaultTraceCapacity = 256

// NewRecorder returns a recorder holding up to capacity traces.
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{ring: make([]TraceView, capacity)}
}

// Record stores one finished trace, evicting the oldest when full.
func (r *Recorder) Record(v TraceView) {
	if r == nil || v.ID == "" {
		return
	}
	r.mu.Lock()
	r.ring[r.next] = v
	r.next = (r.next + 1) % len(r.ring)
	if r.n < len(r.ring) {
		r.n++
	}
	r.mu.Unlock()
}

// Slowest returns up to n recent traces, slowest first (n <= 0 means
// all retained).
func (r *Recorder) Slowest(n int) []TraceView {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]TraceView, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.ring[i])
	}
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].DurationUS > out[j].DurationUS })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
