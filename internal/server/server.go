// Package server exposes the Hive platform as a JSON REST API — the
// web-facing surface of Figure 1. The paper's deployment used
// JomSocial/Joomla; this server is the stdlib net/http substitute
// offering the same service set (profiles, connections, follows, content,
// check-ins, Q&A, workpads, feeds) plus the knowledge services
// (relationship explanation, recommendations, context-aware search,
// previews, digests).
package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"hive"
	"hive/internal/core"
	"hive/internal/social"
	"hive/internal/textindex"
)

// Server routes HTTP requests to a Platform.
type Server struct {
	p   *hive.Platform
	mux *http.ServeMux
}

// New builds a server around a platform.
func New(p *hive.Platform) *Server {
	s := &Server{p: p, mux: http.NewServeMux()}
	s.routes()
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) routes() {
	m := s.mux
	m.HandleFunc("GET /api/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	m.HandleFunc("POST /api/users", jsonIn(s.postUser))
	m.HandleFunc("GET /api/users/{id}", s.getUser)
	m.HandleFunc("GET /api/users", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.p.Users())
	})
	m.HandleFunc("POST /api/conferences", jsonIn(s.postConference))
	m.HandleFunc("POST /api/sessions", jsonIn(s.postSession))
	m.HandleFunc("POST /api/papers", jsonIn(s.postPaper))
	m.HandleFunc("POST /api/presentations", jsonIn(s.postPresentation))
	m.HandleFunc("POST /api/connections", jsonIn(s.postConnection))
	m.HandleFunc("POST /api/follows", jsonIn(s.postFollow))
	m.HandleFunc("POST /api/checkins", jsonIn(s.postCheckin))
	m.HandleFunc("GET /api/sessions/{id}/attendees", s.getAttendees)
	m.HandleFunc("POST /api/questions", jsonIn(s.postQuestion))
	m.HandleFunc("POST /api/answers", jsonIn(s.postAnswer))
	m.HandleFunc("POST /api/comments", jsonIn(s.postComment))
	m.HandleFunc("POST /api/workpads", jsonIn(s.postWorkpad))
	m.HandleFunc("POST /api/workpads/{id}/items", s.postWorkpadItem)
	m.HandleFunc("POST /api/workpads/{id}/activate", s.postWorkpadActivate)
	m.HandleFunc("GET /api/users/{id}/workpad", s.getActiveWorkpad)
	m.HandleFunc("GET /api/users/{id}/feed", s.getFeed)
	m.HandleFunc("GET /api/tags/{tag}/events", s.getTagEvents)

	m.HandleFunc("GET /api/relationship", s.getRelationship)
	m.HandleFunc("GET /api/users/{id}/recommendations/peers", s.getPeerRecs)
	m.HandleFunc("GET /api/users/{id}/recommendations/resources", s.getResourceRecs)
	m.HandleFunc("GET /api/users/{id}/sessions/suggest", s.getSessionSuggestions)
	m.HandleFunc("GET /api/search", s.getSearch)
	m.HandleFunc("GET /api/preview", s.getPreview)
	m.HandleFunc("GET /api/users/{id}/digest", s.getDigest)
	m.HandleFunc("GET /api/communities", s.getCommunities)
	m.HandleFunc("GET /api/users/{id}/history", s.getHistory)
	m.HandleFunc("GET /api/users/{id}/resource-relationship", s.getResourceRelationship)
	m.HandleFunc("GET /api/knowledge/paths", s.getKnowledgePaths)
	m.HandleFunc("POST /api/refresh", func(w http.ResponseWriter, r *http.Request) {
		if err := s.p.Refresh(); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "refreshed"})
	})
}

// jsonIn adapts a typed JSON handler.
func jsonIn[T any](fn func(T) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var v T
		if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad json: " + err.Error()})
			return
		}
		if err := fn(v); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"status": "created"})
	}
}

func (s *Server) postUser(u hive.User) error                  { return s.p.RegisterUser(u) }
func (s *Server) postConference(c hive.Conference) error      { return s.p.CreateConference(c) }
func (s *Server) postSession(ss hive.Session) error           { return s.p.CreateSession(ss) }
func (s *Server) postPaper(pa hive.Paper) error               { return s.p.PublishPaper(pa) }
func (s *Server) postPresentation(pr hive.Presentation) error { return s.p.UploadPresentation(pr) }
func (s *Server) postQuestion(q hive.Question) error          { return s.p.Ask(q) }
func (s *Server) postAnswer(a hive.Answer) error              { return s.p.AnswerQuestion(a) }
func (s *Server) postComment(c hive.Comment) error            { return s.p.PostComment(c) }
func (s *Server) postWorkpad(w hive.Workpad) error            { return s.p.CreateWorkpad(w) }

type pairReq struct {
	A string `json:"a"`
	B string `json:"b"`
}

func (s *Server) postConnection(r pairReq) error { return s.p.Connect(r.A, r.B) }
func (s *Server) postFollow(r pairReq) error     { return s.p.Follow(r.A, r.B) }

type checkinReq struct {
	SessionID string `json:"session_id"`
	UserID    string `json:"user_id"`
}

func (s *Server) postCheckin(r checkinReq) error { return s.p.CheckIn(r.SessionID, r.UserID) }

func (s *Server) getUser(w http.ResponseWriter, r *http.Request) {
	u, err := s.p.GetUser(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, u)
}

func (s *Server) getAttendees(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.p.Attendees(r.PathValue("id")))
}

func (s *Server) postWorkpadItem(w http.ResponseWriter, r *http.Request) {
	var item hive.WorkpadItem
	if err := json.NewDecoder(r.Body).Decode(&item); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if err := s.p.AddToWorkpad(r.PathValue("id"), item); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"status": "added"})
}

func (s *Server) postWorkpadActivate(w http.ResponseWriter, r *http.Request) {
	owner := r.URL.Query().Get("owner")
	if err := s.p.ActivateWorkpad(owner, r.PathValue("id")); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "activated"})
}

func (s *Server) getActiveWorkpad(w http.ResponseWriter, r *http.Request) {
	wp, err := s.p.ActiveWorkpad(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, wp)
}

func (s *Server) getFeed(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.p.Feed(r.PathValue("id"), intParam(r, "limit", 50)))
}

func (s *Server) getTagEvents(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.p.EventsByTag("#"+r.PathValue("tag")))
}

func (s *Server) getRelationship(w http.ResponseWriter, r *http.Request) {
	a, b := r.URL.Query().Get("a"), r.URL.Query().Get("b")
	ex, err := s.p.Explain(a, b)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ex)
}

func (s *Server) getPeerRecs(w http.ResponseWriter, r *http.Request) {
	recs, err := s.p.RecommendPeers(r.PathValue("id"), intParam(r, "k", 5))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, recs)
}

func (s *Server) getResourceRecs(w http.ResponseWriter, r *http.Request) {
	useCtx := r.URL.Query().Get("context") != "false"
	recs, err := s.p.RecommendResources(r.PathValue("id"), intParam(r, "k", 5), useCtx)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, recs)
}

func (s *Server) getSessionSuggestions(w http.ResponseWriter, r *http.Request) {
	conf := r.URL.Query().Get("conf")
	sugg, err := s.p.SuggestSessions(r.PathValue("id"), conf, intParam(r, "k", 5))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sugg)
}

func (s *Server) getSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	k := intParam(r, "k", 10)
	user := r.URL.Query().Get("user")
	var (
		res []hive.SearchResult
		err error
	)
	if user != "" {
		res, err = s.p.SearchWithContext(user, q, k)
	} else {
		res, err = s.p.Search(q, k)
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) getPreview(w http.ResponseWriter, r *http.Request) {
	user := r.URL.Query().Get("user")
	doc := r.URL.Query().Get("doc")
	snips, err := s.p.Preview(user, doc, intParam(r, "k", 3))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, snips)
}

func (s *Server) getDigest(w http.ResponseWriter, r *http.Request) {
	sum, err := s.p.UpdateDigest(r.PathValue("id"), intParam(r, "budget", 5))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sum)
}

func (s *Server) getCommunities(w http.ResponseWriter, r *http.Request) {
	comms, err := s.p.Communities()
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, comms)
}

func (s *Server) getHistory(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	useCtx := r.URL.Query().Get("context") == "true"
	hits, err := s.p.SearchHistory(r.PathValue("id"), q, useCtx, intParam(r, "limit", 50))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, hits)
}

func (s *Server) getResourceRelationship(w http.ResponseWriter, r *http.Request) {
	entity := r.URL.Query().Get("entity")
	evs, err := s.p.ExplainResource(r.PathValue("id"), entity)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, evs)
}

func (s *Server) getKnowledgePaths(w http.ResponseWriter, r *http.Request) {
	a, b := r.URL.Query().Get("a"), r.URL.Query().Get("b")
	paths, err := s.p.KnowledgePaths(a, b, intParam(r, "k", 3))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, paths)
}

func intParam(r *http.Request, name string, def int) int {
	if v := r.URL.Query().Get(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr maps domain errors to HTTP statuses.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, social.ErrNotFound),
		errors.Is(err, core.ErrUnknownUser),
		errors.Is(err, textindex.ErrDocNotFound):
		status = http.StatusNotFound
	case errors.Is(err, social.ErrInvalid):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
