module hive

go 1.23
