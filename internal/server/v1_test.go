package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"hive"
	"hive/api"
)

// decodeEnvelope fetches path and returns (status, error envelope).
func decodeEnvelope(t *testing.T, resp *http.Response) (int, *api.Error) {
	t.Helper()
	defer resp.Body.Close()
	var env api.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decode envelope: %v", err)
	}
	if env.Error == nil {
		t.Fatalf("no error envelope (status %d)", resp.StatusCode)
	}
	return resp.StatusCode, env.Error
}

// TestErrorEnvelopeContract pins the domain-error -> (HTTP status,
// stable code) mapping of the v1 contract, one row per domain error
// plus the transport-level failure modes.
func TestErrorEnvelopeContract(t *testing.T) {
	ts, _ := newTestServer(t)
	seedViaAPI(t, ts)

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"social.ErrNotFound (missing user)", "GET", "/api/v1/users/ghost", "", 404, api.CodeNotFound},
		{"social.ErrNotFound (dangling session ref)", "POST", "/api/v1/sessions",
			`{"id":"sx","conference_id":"nope","title":"t"}`, 404, api.CodeNotFound},
		{"social.ErrInvalid (empty user ID)", "POST", "/api/v1/users", `{}`, 400, api.CodeInvalidArgument},
		{"core.ErrUnknownUser (relationship)", "GET", "/api/v1/relationship?a=ghost&b=zach", "", 404, api.CodeNotFound},
		{"core.ErrUnknownUser (peer recs)", "GET", "/api/v1/users/ghost/recommendations/peers", "", 404, api.CodeNotFound},
		{"textindex.ErrDocNotFound (preview)", "GET", "/api/v1/preview?user=zach&doc=pres/none", "", 404, api.CodeNotFound},
		{"malformed JSON body", "POST", "/api/v1/users", `{`, 400, api.CodeBadRequest},
		{"malformed cursor", "GET", "/api/v1/users?cursor=%21%21garbage", "", 400, api.CodeInvalidArgument},
		{"unknown batch kind", "POST", "/api/v1/batch",
			`{"entities":[{"kind":"alien","data":{}}]}`, 200, ""}, // per-item error, checked below
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp *http.Response
			var err error
			if tc.method == "GET" {
				resp, err = http.Get(ts.URL + tc.path)
			} else {
				resp, err = http.Post(ts.URL+tc.path, "application/json", bytes.NewBufferString(tc.body))
			}
			if err != nil {
				t.Fatal(err)
			}
			if tc.wantCode == "" { // batch: per-item envelope
				defer resp.Body.Close()
				var br api.BatchResponse
				if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
					t.Fatal(err)
				}
				if resp.StatusCode != tc.wantStatus || br.Failed != 1 ||
					len(br.Errors) != 1 || br.Errors[0].Error.Code != api.CodeInvalidArgument {
					t.Fatalf("batch response = %d %+v", resp.StatusCode, br)
				}
				return
			}
			status, e := decodeEnvelope(t, resp)
			if status != tc.wantStatus || e.Code != tc.wantCode {
				t.Fatalf("got (%d, %q), want (%d, %q); message %q",
					status, e.Code, tc.wantStatus, tc.wantCode, e.Message)
			}
			if e.Message == "" {
				t.Fatal("empty error message")
			}
		})
	}
}

// TestConditionalGET: knowledge endpoints revalidate on the snapshot
// generation — matching If-None-Match gets a 304, a data change (after
// refresh) rotates the ETag and serves a full response again.
func TestConditionalGET(t *testing.T) {
	ts, p := newTestServer(t)
	seedViaAPI(t, ts)

	get := func(inm string) (*http.Response, string) {
		req, _ := http.NewRequest("GET", ts.URL+"/api/v1/search?q=graph+partitioning&limit=5", nil)
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		return resp, buf.String()
	}

	// Build the snapshot so the generation is stable, then fetch.
	if err := p.Refresh(); err != nil {
		t.Fatal(err)
	}
	resp, body := get("")
	if resp.StatusCode != 200 || body == "" {
		t.Fatalf("initial fetch = %d %q", resp.StatusCode, body)
	}
	tag := resp.Header.Get("ETag")
	if tag == "" {
		t.Fatal("no ETag on knowledge endpoint")
	}

	// Revalidation with the current tag: 304, empty body.
	resp, body = get(tag)
	if resp.StatusCode != http.StatusNotModified || body != "" {
		t.Fatalf("revalidate = %d %q, want 304 with empty body", resp.StatusCode, body)
	}
	// Weak-form and list-form matches too.
	if resp, _ = get("W/" + tag + `, "other"`); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("weak/list revalidate = %d", resp.StatusCode)
	}

	// Mutate + refresh: generation bumps, old tag must miss.
	if err := p.RegisterUser(hive.User{ID: "new", Name: "New", Interests: []string{"graphs"}}); err != nil {
		t.Fatal(err)
	}
	if err := p.Refresh(); err != nil {
		t.Fatal(err)
	}
	resp, body = get(tag)
	if resp.StatusCode != 200 || body == "" {
		t.Fatalf("post-change fetch = %d %q, want full 200", resp.StatusCode, body)
	}
	if newTag := resp.Header.Get("ETag"); newTag == tag || newTag == "" {
		t.Fatalf("ETag did not rotate: %q -> %q", tag, newTag)
	}
}

// TestConditionalGETEdgeCases: If-None-Match "*" must not mask a 404
// (RFC 9110: "*" matches only when a representation exists, unknowable
// before the handler runs), and error responses carry no ETag.
func TestConditionalGETEdgeCases(t *testing.T) {
	ts, p := newTestServer(t)
	seedViaAPI(t, ts)
	if err := p.Refresh(); err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest("GET", ts.URL+"/api/v1/users/ghost/recommendations/peers", nil)
	req.Header.Set("If-None-Match", "*")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("INM:* on missing user = %d, want 404", resp.StatusCode)
	}
	if resp.Header.Get("ETag") != "" {
		t.Fatal("error response carries an ETag")
	}

	// Success responses still carry the tag.
	resp, err = http.Get(ts.URL + "/api/v1/search?q=graphs&limit=2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("ETag") == "" {
		t.Fatal("success response lost its ETag")
	}
}

// TestPaginationCursorRoundTrip walks /api/v1/users page by page and
// must reassemble exactly the full sorted listing.
func TestPaginationCursorRoundTrip(t *testing.T) {
	ts, p := newTestServer(t)
	const n = 7
	var want []string
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("u%02d", i)
		want = append(want, id)
		if err := p.RegisterUser(hive.User{ID: id, Name: id}); err != nil {
			t.Fatal(err)
		}
	}

	var got []string
	cursor := ""
	pages := 0
	for {
		url := ts.URL + "/api/v1/users?limit=3"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		var pg api.Page[string]
		if err := json.NewDecoder(resp.Body).Decode(&pg); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if pg.Limit != 3 {
			t.Fatalf("page limit = %d", pg.Limit)
		}
		got = append(got, pg.Items...)
		pages++
		if pg.NextCursor == "" {
			break
		}
		cursor = pg.NextCursor
		if pages > n {
			t.Fatal("cursor loop did not terminate")
		}
	}
	if pages != 3 {
		t.Fatalf("pages = %d, want 3", pages)
	}
	if len(got) != n {
		t.Fatalf("got %d users, want %d", len(got), n)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("page walk order: got[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestPaginationBoundedFetchers: engine-backed pages (search) must set
// next_cursor only while further results exist.
func TestPaginationBoundedFetchers(t *testing.T) {
	ts, _ := newTestServer(t)
	seedViaAPI(t, ts)
	var pg api.Page[hive.SearchResult]
	if code := get(t, ts, "/api/v1/search?q=graph+partitioning&limit=1", &pg); code != 200 {
		t.Fatalf("code = %d", code)
	}
	if len(pg.Items) != 1 {
		t.Fatalf("items = %+v", pg.Items)
	}
	// Walk to exhaustion.
	seen := len(pg.Items)
	for pg.NextCursor != "" && seen < 50 {
		cursor := pg.NextCursor
		pg = api.Page[hive.SearchResult]{} // next_cursor is omitempty: reset between pages
		if code := get(t, ts, "/api/v1/search?q=graph+partitioning&limit=1&cursor="+cursor, &pg); code != 200 {
			t.Fatalf("code = %d", code)
		}
		seen += len(pg.Items)
	}
	if seen >= 50 {
		t.Fatal("search pagination never exhausted")
	}
}

// TestFeedPaginationWalksWholeFeed: the v1 feed pages newest-first
// through the entire feed with no duplicated or unreachable events
// (Store.Feed's suffix-keeping limit must not leak into cursor math).
func TestFeedPaginationWalksWholeFeed(t *testing.T) {
	ts, p := newTestServer(t)
	seedViaAPI(t, ts)
	// zach emits 11 more events that aaron (his follower) sees.
	for i := 0; i < 11; i++ {
		if err := p.LogBrowse("zach", fmt.Sprintf("obj%02d", i)); err != nil {
			t.Fatal(err)
		}
	}

	var seqs []uint64
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > 20 {
			t.Fatal("cursor loop did not terminate")
		}
		url := "/api/v1/users/aaron/feed?limit=3"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		var pg api.Page[hive.Event]
		if code := get(t, ts, url, &pg); code != 200 {
			t.Fatalf("code = %d", code)
		}
		for _, ev := range pg.Items {
			seqs = append(seqs, ev.Seq)
		}
		if pg.NextCursor == "" {
			break
		}
		cursor = pg.NextCursor
	}
	if len(seqs) < 13 { // 11 browses + checkin + question
		t.Fatalf("walked %d events, want the whole feed (>= 13)", len(seqs))
	}
	seen := map[uint64]bool{}
	for i, s := range seqs {
		if seen[s] {
			t.Fatalf("duplicate event seq %d across pages (seqs %v)", s, seqs)
		}
		seen[s] = true
		if i > 0 && seqs[i-1] < s {
			t.Fatalf("feed not newest-first: %v", seqs)
		}
	}
}

// TestLegacyFeedLimitZeroKeepsWindow: legacy limit=0 (historically
// "unbounded") falls back to the default window, not to a single item.
func TestLegacyFeedLimitZeroKeepsWindow(t *testing.T) {
	ts, _ := newTestServer(t)
	seedViaAPI(t, ts)
	var feed []hive.Event
	if code := get(t, ts, "/api/users/aaron/feed?limit=0", &feed); code != 200 {
		t.Fatalf("code = %d", code)
	}
	if len(feed) < 2 {
		t.Fatalf("legacy limit=0 returned %d events, want the default window", len(feed))
	}
}

// TestConditional304StillRevalidates: answering 304 from the etag fast
// path must still kick the stale-while-revalidate refresh, or a
// revalidating client would be pinned to a stale snapshot forever.
// Deltas are disabled so a write actually leaves the snapshot stale —
// with them on, the write itself would swap a fresh generation in.
func TestConditional304StillRevalidates(t *testing.T) {
	p, err := hive.Open(hive.Options{DisableDeltas: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(p))
	t.Cleanup(func() {
		ts.Close()
		p.Close()
	})
	seedViaAPI(t, ts)
	if err := p.Refresh(); err != nil {
		t.Fatal(err)
	}
	gen := p.Generation()

	// Write without refreshing: same generation, stale snapshot.
	if err := p.RegisterUser(hive.User{ID: "late", Name: "Late"}); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest("GET", ts.URL+"/api/v1/search?q=graphs&limit=2", nil)
	req.Header.Set("If-None-Match", fmt.Sprintf(`"hive-g%d"`, gen))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("status = %d, want 304", resp.StatusCode)
	}
	// The 304 must have kicked a background rebuild.
	deadline := time.Now().Add(5 * time.Second)
	for p.Generation() == gen {
		if time.Now().After(deadline) {
			t.Fatal("304 fast path never triggered revalidation")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestLegacyRefreshSuccessorLink: /api/refresh's v1 twin moved to
// /api/v1/admin/refresh; the advertised successor must not 404.
func TestLegacyRefreshSuccessorLink(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/api/refresh", "application/json", bytes.NewBufferString("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if link := resp.Header.Get("Link"); link != `</api/v1/admin/refresh>; rel="successor-version"` {
		t.Fatalf("Link = %q", link)
	}
}

// TestBatchIngestSingleInvalidation is the batch acceptance criterion:
// N entities, one store pass, exactly one snapshot invalidation.
func TestBatchIngestSingleInvalidation(t *testing.T) {
	ts, p := newTestServer(t)

	var invalidations atomic.Int32
	p.Store().OnChange(func([]hive.ChangeEvent) { invalidations.Add(1) })

	entities := []api.BatchEntity{}
	add := func(kind string, v any) {
		ent, err := api.NewBatchEntity(kind, v)
		if err != nil {
			t.Fatal(err)
		}
		entities = append(entities, ent)
	}
	add(api.KindUser, api.User{ID: "zach", Name: "Zach", Interests: []string{"graphs"}})
	add(api.KindUser, api.User{ID: "ann", Name: "Ann", Interests: []string{"graphs"}})
	add(api.KindConference, api.Conference{ID: "edbt13", Name: "EDBT 2013"})
	add(api.KindSession, api.Session{ID: "s1", ConferenceID: "edbt13", Title: "Graphs", Hashtag: "#s1"})
	add(api.KindPaper, api.Paper{ID: "p1", Title: "Graph partitioning", Abstract: "We partition graphs.",
		Authors: []string{"ann"}, ConferenceID: "edbt13", SessionID: "s1"})
	add(api.KindConnection, api.ConnectRequest{A: "zach", B: "ann"})
	add(api.KindFollow, api.FollowRequest{Follower: "zach", Followee: "ann"})
	add(api.KindCheckin, api.CheckinRequest{SessionID: "s1", UserID: "zach"})
	add(api.KindQuestion, api.Question{ID: "q1", Author: "zach", Target: "p1", Text: "why?"})
	add(api.KindWorkpad, api.Workpad{ID: "w1", Owner: "zach", Name: "ctx"})

	resp := post(t, ts, "/api/v1/batch", api.BatchRequest{Entities: entities})
	defer resp.Body.Close()
	var br api.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || br.Applied != len(entities) || br.Failed != 0 {
		t.Fatalf("batch = %d %+v", resp.StatusCode, br)
	}
	if got := invalidations.Load(); got != 1 {
		t.Fatalf("snapshot invalidations = %d for %d entities, want exactly 1", got, len(entities))
	}

	// The batch really landed: entities are queryable.
	var u hive.User
	if code := get(t, ts, "/api/v1/users/zach", &u); code != 200 || u.Name != "Zach" {
		t.Fatalf("user after batch = %d %+v", code, u)
	}
	var att api.Page[string]
	if code := get(t, ts, "/api/v1/sessions/s1/attendees", &att); code != 200 || len(att.Items) != 1 {
		t.Fatalf("attendees after batch = %d %+v", code, att)
	}

	// Partial failure: bad elements are reported, good ones still apply,
	// still one invalidation for the whole batch.
	invalidations.Store(0)
	mixed := []api.BatchEntity{}
	entities = entities[:0]
	add(api.KindUser, api.User{ID: "carl", Name: "Carl"})
	add(api.KindUser, api.User{}) // invalid: empty ID
	mixed = entities
	resp = post(t, ts, "/api/v1/batch", api.BatchRequest{Entities: mixed})
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if br.Applied != 1 || br.Failed != 1 || len(br.Errors) != 1 ||
		br.Errors[0].Index != 1 || br.Errors[0].Error.Code != api.CodeInvalidArgument {
		t.Fatalf("mixed batch = %+v", br)
	}
	if got := invalidations.Load(); got != 1 {
		t.Fatalf("mixed-batch invalidations = %d, want 1", got)
	}
}

// TestTagNormalization: hashed and bare path tags resolve the same
// fan-out (the legacy handler used to produce "##tag" for hashed input).
func TestTagNormalization(t *testing.T) {
	ts, _ := newTestServer(t)
	seedViaAPI(t, ts) // zach checked into s1 whose hashtag is #s1

	for _, path := range []string{
		"/api/v1/tags/s1/events",
		"/api/v1/tags/%23s1/events", // "#s1"
	} {
		var pg api.Page[hive.Event]
		if code := get(t, ts, path, &pg); code != 200 {
			t.Fatalf("%s code = %d", path, code)
		}
		if len(pg.Items) == 0 {
			t.Fatalf("%s returned no events", path)
		}
	}
	// Legacy alias, bare shape, same normalization.
	var evs []hive.Event
	if code := get(t, ts, "/api/tags/%23s1/events", &evs); code != 200 || len(evs) == 0 {
		t.Fatalf("legacy hashed tag = %d %v", code, evs)
	}
}

// TestLegacyUsersCapped: the unversioned /api/users alias no longer
// returns the entire user table — it is capped at the default page size.
func TestLegacyUsersCapped(t *testing.T) {
	ts, p := newTestServer(t)
	total := api.DefaultPageSize + 13
	for i := 0; i < total; i++ {
		if err := p.RegisterUser(hive.User{ID: fmt.Sprintf("u%03d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	var ids []string
	if code := get(t, ts, "/api/users", &ids); code != 200 {
		t.Fatalf("code = %d", code)
	}
	if len(ids) != api.DefaultPageSize {
		t.Fatalf("legacy /api/users returned %d ids, want cap %d", len(ids), api.DefaultPageSize)
	}
	// Absurd explicit limits clamp to the ceiling rather than flowing through.
	if code := get(t, ts, "/api/users?limit=999999", &ids); code != 200 {
		t.Fatalf("code = %d", code)
	}
	if len(ids) > api.MaxPageSize {
		t.Fatalf("legacy limit clamp failed: %d ids", len(ids))
	}
	// v1 exposes the rest through cursors.
	var pg api.Page[string]
	if code := get(t, ts, fmt.Sprintf("/api/v1/users?limit=%d", api.MaxPageSize), &pg); code != 200 {
		t.Fatalf("code = %d", code)
	}
	if len(pg.Items) != total || pg.NextCursor != "" {
		t.Fatalf("v1 users page: %d items next=%q", len(pg.Items), pg.NextCursor)
	}
}

// TestIntParamClamped: negative and absurd k/limit/budget values no
// longer flow into engine calls.
func TestIntParamClamped(t *testing.T) {
	ts, _ := newTestServer(t)
	seedViaAPI(t, ts)
	for _, path := range []string{
		"/api/v1/search?q=graphs&limit=-5",
		"/api/v1/users/zach/recommendations/peers?limit=100000000",
		"/api/v1/users/zach/digest?budget=-1",
		"/api/v1/users/zach/digest?budget=99999999",
		"/api/users/zach/recommendations/peers?k=-3", // legacy alias too
		"/api/search?q=graphs&k=2000000000",
		"/api/users/zach/feed?limit=-9",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s = %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestBodySizeCap: oversized request bodies are rejected with 413 and
// the payload_too_large code instead of being buffered unboundedly.
func TestBodySizeCap(t *testing.T) {
	ts, _ := newTestServer(t)
	huge := fmt.Sprintf(`{"id":"big","name":%q}`, bytes.Repeat([]byte("x"), 2<<20))
	resp, err := http.Post(ts.URL+"/api/v1/users", "application/json", bytes.NewBufferString(huge))
	if err != nil {
		t.Fatal(err)
	}
	status, e := decodeEnvelope(t, resp)
	if status != http.StatusRequestEntityTooLarge || e.Code != api.CodePayloadTooLarge {
		t.Fatalf("got (%d, %q), want (413, %q)", status, e.Code, api.CodePayloadTooLarge)
	}
}

// TestTimeoutExemptsLongRoutes: batch and synchronous refresh scale
// with data size and must not be cut off by the global request budget.
func TestTimeoutExemptsLongRoutes(t *testing.T) {
	p, err := hive.Open(hive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A 1ns budget 503s everything that is not exempt.
	ts := httptest.NewServer(NewWith(p, Config{Timeout: 1}))
	t.Cleanup(func() {
		ts.Close()
		p.Close()
	})
	resp, err := http.Get(ts.URL + "/api/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("non-exempt route = %d, want 503 under 1ns budget", resp.StatusCode)
	}
	for _, path := range []string{"/api/v1/batch", "/api/v1/admin/refresh?wait=true", "/api/refresh"} {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewBufferString(`{"entities":[]}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			t.Fatalf("%s hit the request timeout; must be exempt", path)
		}
	}
}

// TestLegacyDeprecationHeaders: unversioned aliases advertise their v1
// successor.
func TestLegacyDeprecationHeaders(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/api/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Deprecation") != "true" {
		t.Fatal("legacy route missing Deprecation header")
	}
	if link := resp.Header.Get("Link"); link != `</api/v1/healthz>; rel="successor-version"` {
		t.Fatalf("Link = %q", link)
	}
	// v1 routes carry neither.
	resp, err = http.Get(ts.URL + "/api/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Deprecation") != "" {
		t.Fatal("v1 route wrongly marked deprecated")
	}
}

// TestV1FullScenario drives the Zach scenario end-to-end on the v1
// surface with typed DTOs and paginated envelopes.
func TestV1FullScenario(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, u := range []api.User{
		{ID: "zach", Name: "Zach", Interests: []string{"graphs"}},
		{ID: "ann", Name: "Ann", Interests: []string{"graphs"}},
		{ID: "aaron", Name: "Aaron"},
	} {
		expectStatus(t, post(t, ts, "/api/v1/users", u), http.StatusCreated)
	}
	expectStatus(t, post(t, ts, "/api/v1/conferences", api.Conference{ID: "edbt13", Name: "EDBT"}), http.StatusCreated)
	expectStatus(t, post(t, ts, "/api/v1/sessions",
		api.Session{ID: "s1", ConferenceID: "edbt13", Title: "Graphs", Hashtag: "#s1"}), http.StatusCreated)
	expectStatus(t, post(t, ts, "/api/v1/papers", api.Paper{ID: "p1", Title: "Graph partitioning",
		Abstract: "We partition graphs.", Authors: []string{"ann"}, ConferenceID: "edbt13", SessionID: "s1"}), http.StatusCreated)
	expectStatus(t, post(t, ts, "/api/v1/connections", api.ConnectRequest{A: "zach", B: "ann"}), http.StatusCreated)
	expectStatus(t, post(t, ts, "/api/v1/follows", api.FollowRequest{Follower: "aaron", Followee: "zach"}), http.StatusCreated)
	expectStatus(t, post(t, ts, "/api/v1/checkins", api.CheckinRequest{SessionID: "s1", UserID: "zach"}), http.StatusCreated)
	expectStatus(t, post(t, ts, "/api/v1/workpads", api.Workpad{ID: "w1", Owner: "zach", Name: "ctx"}), http.StatusCreated)
	expectStatus(t, post(t, ts, "/api/v1/workpads/w1/items",
		api.WorkpadItem{Kind: hive.ItemPaper, Ref: "p1"}), http.StatusCreated)
	expectStatus(t, post(t, ts, "/api/v1/workpads/w1/activate",
		api.ActivateWorkpadRequest{Owner: "zach"}), http.StatusOK)

	var wp api.Workpad
	if code := get(t, ts, "/api/v1/users/zach/workpad", &wp); code != 200 || wp.ID != "w1" || len(wp.Items) != 1 {
		t.Fatalf("workpad = %d %+v", code, wp)
	}
	var feed api.Page[api.Event]
	if code := get(t, ts, "/api/v1/users/aaron/feed", &feed); code != 200 || len(feed.Items) == 0 {
		t.Fatalf("feed = %d %+v", code, feed)
	}
	var ex api.Explanation
	if code := get(t, ts, "/api/v1/relationship?a=zach&b=ann", &ex); code != 200 || len(ex.Evidences) == 0 {
		t.Fatalf("relationship = %d %+v", code, ex)
	}
	var recs api.Page[api.PeerRecommendation]
	if code := get(t, ts, "/api/v1/users/zach/recommendations/peers?limit=3", &recs); code != 200 {
		t.Fatalf("peer recs = %d", code)
	}
	var sugg api.Page[api.SessionSuggestion]
	if code := get(t, ts, "/api/v1/users/aaron/sessions/suggest?conf=edbt13&limit=3", &sugg); code != 200 {
		t.Fatalf("suggest = %d", code)
	}
	var comms api.Page[[]string]
	if code := get(t, ts, "/api/v1/communities", &comms); code != 200 || len(comms.Items) == 0 {
		t.Fatalf("communities = %d %+v", code, comms)
	}
	var hits api.Page[api.HistoryEntry]
	if code := get(t, ts, "/api/v1/users/zach/history?q=checkin", &hits); code != 200 || len(hits.Items) == 0 {
		t.Fatalf("history = %d %+v", code, hits)
	}
	if code := get(t, ts, "/api/v1/preview?user=zach&doc=pres/none", nil); code != 404 {
		t.Fatalf("preview missing doc = %d", code)
	}
	var sum api.Summary
	if code := get(t, ts, "/api/v1/users/aaron/digest?budget=3", &sum); code != 200 || len(sum.Rows) == 0 {
		t.Fatalf("digest = %d %+v", code, sum)
	}
	var paths []api.KnowledgePath
	if code := get(t, ts, "/api/v1/knowledge/paths?a=user:ann&b=session:s1&k=2", &paths); code != 200 || len(paths) == 0 {
		t.Fatalf("knowledge paths = %d %v", code, paths)
	}
	var health api.Health
	if code := get(t, ts, "/api/v1/healthz", &health); code != 200 || health.Status != "ok" {
		t.Fatalf("healthz = %d %+v", code, health)
	}
	resp := post(t, ts, "/api/v1/admin/refresh?wait=true", struct{}{})
	expectStatus(t, resp, http.StatusOK)
}

// TestV1RequestIDPropagation: the middleware echoes a provided ID and
// assigns one otherwise.
func TestV1RequestIDPropagation(t *testing.T) {
	ts, _ := newTestServer(t)
	req, _ := http.NewRequest("GET", ts.URL+"/api/v1/healthz", nil)
	req.Header.Set("X-Request-ID", "trace-me-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "trace-me-42" {
		t.Fatalf("request id = %q", got)
	}
	resp, err = http.Get(ts.URL + "/api/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("no generated request id")
	}
}
