package textindex

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// randomCorpus builds an index over nDocs random documents drawn from a
// small vocabulary (small so terms collide across docs and scores tie).
func randomCorpus(rng *rand.Rand, nDocs int) (*Index, []string) {
	vocab := []string{
		"graph", "partition", "stream", "tensor", "social", "network",
		"query", "ranking", "index", "cluster", "community", "context",
		"sketch", "latency", "snapshot", "peer",
	}
	ix := NewIndex()
	ids := make([]string, nDocs)
	for d := 0; d < nDocs; d++ {
		n := 1 + rng.Intn(30)
		words := make([]string, n)
		for i := range words {
			words[i] = vocab[rng.Intn(len(vocab))]
		}
		id := fmt.Sprintf("doc/%02d", d)
		ids[d] = id
		ix.Add(id, strings.Join(words, " "))
	}
	return ix, ids
}

func randomQueryVector(rng *rand.Rand) Vector {
	vocab := []string{"graph", "partition", "stream", "tensor", "social", "network", "unseen"}
	v := make(Vector)
	for _, t := range vocab {
		if rng.Intn(2) == 0 {
			v[Stem(t)] = rng.Float64() * 3
		}
	}
	return v
}

func sameResults(t *testing.T, label string, live, frozen []Result) {
	t.Helper()
	if len(live) != len(frozen) {
		t.Fatalf("%s: live returned %d results, frozen %d\nlive:   %v\nfrozen: %v",
			label, len(live), len(frozen), live, frozen)
	}
	for i := range live {
		if live[i].DocID != frozen[i].DocID {
			t.Fatalf("%s: rank %d: live %q, frozen %q\nlive:   %v\nfrozen: %v",
				label, i, live[i].DocID, frozen[i].DocID, live, frozen)
		}
		// Scores must be bit-identical: both sides accumulate floats in
		// the same deterministic order.
		if live[i].Score != frozen[i].Score {
			t.Fatalf("%s: rank %d (%s): live score %v, frozen %v",
				label, i, live[i].DocID, live[i].Score, frozen[i].Score)
		}
	}
}

// TestFrozenParity is the frozen-vs-live property test: on randomized
// corpora, Frozen.Search, Frozen.SearchVector and Frozen.TFIDFVector
// must reproduce the live Index outputs exactly, including tie-break
// order and bit-identical scores.
func TestFrozenParity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	queries := []string{
		"graph partition", "stream tensor graph", "social network community",
		"latency", "unknown words only", "", "graph graph graph",
	}
	for trial := 0; trial < 40; trial++ {
		ix, ids := randomCorpus(rng, 1+rng.Intn(40))
		f := ix.Freeze()

		if f.Len() != ix.Len() {
			t.Fatalf("trial %d: frozen len %d, live %d", trial, f.Len(), ix.Len())
		}
		for _, q := range queries {
			for _, k := range []int{1, 3, 10, 0} {
				label := fmt.Sprintf("trial %d Search(%q, %d)", trial, q, k)
				sameResults(t, label, ix.Search(q, k), f.Search(q, k))
			}
		}
		for qi := 0; qi < 5; qi++ {
			qv := randomQueryVector(rng)
			cq := f.Compile(qv) // compiled once, reused across k values
			for _, k := range []int{1, 5, 0} {
				label := fmt.Sprintf("trial %d SearchVector(#%d, %d)", trial, qi, k)
				live := ix.SearchVector(qv, k)
				sameResults(t, label, live, f.SearchVector(qv, k))
				sameResults(t, label+" compiled", live, f.SearchCompiled(cq, k))
			}
		}
		for _, id := range ids {
			lv, lerr := ix.TFIDFVector(id)
			fv, ferr := f.TFIDFVector(id)
			if (lerr == nil) != (ferr == nil) {
				t.Fatalf("trial %d TFIDFVector(%s): live err %v, frozen err %v", trial, id, lerr, ferr)
			}
			if len(lv) != len(fv) {
				t.Fatalf("trial %d TFIDFVector(%s): live %d terms, frozen %d", trial, id, len(lv), len(fv))
			}
			for term, w := range lv {
				if fv[term] != w {
					t.Fatalf("trial %d TFIDFVector(%s): term %q live %v frozen %v", trial, id, term, w, fv[term])
				}
			}
			lt, _ := ix.Text(id)
			ft, err := f.Text(id)
			if err != nil || lt != ft {
				t.Fatalf("trial %d Text(%s) mismatch (err %v)", trial, id, err)
			}
		}
	}
}

// TestFrozenConcurrentSearches hammers one Frozen from many goroutines
// (exercising the pooled scratch buffers; run with -race) and checks
// every result still matches the live index.
func TestFrozenConcurrentSearches(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ix, _ := randomCorpus(rng, 50)
	f := ix.Freeze()
	queries := []string{"graph partition", "stream tensor", "community network ranking", "index"}
	qv := randomQueryVector(rng)
	cq := f.Compile(qv)
	wantKw := make([][]Result, len(queries))
	for i, q := range queries {
		wantKw[i] = ix.Search(q, 5)
	}
	wantVec := ix.SearchVector(qv, 5)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for it := 0; it < 200; it++ {
				qi := r.Intn(len(queries))
				got := f.Search(queries[qi], 5)
				want := wantKw[qi]
				if len(got) != len(want) {
					t.Errorf("concurrent Search(%q): %d results, want %d", queries[qi], len(got), len(want))
					return
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("concurrent Search(%q) rank %d: %+v, want %+v", queries[qi], i, got[i], want[i])
						return
					}
				}
				gotV := f.SearchCompiled(cq, 5)
				if len(gotV) != len(wantVec) {
					t.Errorf("concurrent SearchCompiled: %d results, want %d", len(gotV), len(wantVec))
					return
				}
				for i := range wantVec {
					if gotV[i] != wantVec[i] {
						t.Errorf("concurrent SearchCompiled rank %d: %+v, want %+v", i, gotV[i], wantVec[i])
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
}

// TestFrozenIsASnapshot checks that later index mutations do not leak
// into a frozen snapshot.
func TestFrozenIsASnapshot(t *testing.T) {
	ix := NewIndex()
	ix.Add("a", "graph partitioning systems")
	ix.Add("b", "stream processing engines")
	f := ix.Freeze()

	ix.Add("c", "graph streams")
	ix.Remove("a")

	if f.Len() != 2 {
		t.Fatalf("frozen len = %d, want 2", f.Len())
	}
	res := f.Search("graph", 10)
	if len(res) != 1 || res[0].DocID != "a" {
		t.Fatalf("frozen Search(graph) = %v, want [a]", res)
	}
	if _, err := f.TFIDFVector("c"); err == nil {
		t.Fatal("doc added after freeze should be unknown to the snapshot")
	}
	if _, err := f.Text("a"); err != nil {
		t.Fatalf("doc removed after freeze should still be frozen: %v", err)
	}
}

// TestFrozenUnknownDoc checks the not-found error contract matches.
func TestFrozenUnknownDoc(t *testing.T) {
	ix := NewIndex()
	ix.Add("a", "graph")
	f := ix.Freeze()
	if _, err := f.TFIDFVector("nope"); err == nil {
		t.Fatal("want ErrDocNotFound")
	}
	if _, err := f.Text("nope"); err == nil {
		t.Fatal("want ErrDocNotFound")
	}
	if f.DocNorm("nope") != 0 {
		t.Fatal("unknown doc norm should be 0")
	}
}

// TestFrozenEmptyIndex checks degenerate inputs.
func TestFrozenEmptyIndex(t *testing.T) {
	f := NewIndex().Freeze()
	if f.Len() != 0 {
		t.Fatalf("len = %d", f.Len())
	}
	if res := f.Search("graph", 5); len(res) != 0 {
		t.Fatalf("Search on empty = %v", res)
	}
	if res := f.SearchVector(Vector{"graph": 1}, 5); len(res) != 0 {
		t.Fatalf("SearchVector on empty = %v", res)
	}
}

// TestReplaceAndRemoveKeepPostingsConsistent exercises the O(terms-in-doc)
// removal path: replacing and removing documents must leave search and
// freeze behavior identical to building the final corpus from scratch.
func TestReplaceAndRemoveKeepPostingsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ix, _ := randomCorpus(rng, 20)
	// Churn: replace half the docs, remove a quarter.
	for d := 0; d < 20; d += 2 {
		ix.Add(fmt.Sprintf("doc/%02d", d), "replacement text about graph community detection")
	}
	for d := 0; d < 20; d += 4 {
		ix.Remove(fmt.Sprintf("doc/%02d", d))
	}
	// Rebuild the same final state from scratch.
	fresh := NewIndex()
	for _, id := range ix.DocIDs() {
		text, err := ix.Text(id)
		if err != nil {
			t.Fatal(err)
		}
		fresh.Add(id, text)
	}
	for _, q := range []string{"graph community", "stream tensor", "partition"} {
		sameResults(t, "churned vs fresh "+q, fresh.Search(q, 10), ix.Search(q, 10))
	}
	sameResults(t, "churned vs fresh frozen", fresh.Freeze().Search("graph", 10), ix.Freeze().Search("graph", 10))
}
