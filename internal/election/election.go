// Package election provides lease/epoch-based leader election for the
// replication layer: each candidate tries to hold a lease; acquiring it
// bumps a monotonic epoch, and letting it lapse (crash, partition,
// stop) lets another candidate claim it at a higher epoch. The epoch —
// not the lease itself — is the safety mechanism: the lease decides
// *liveness* (who should be accepting writes right now), while the
// epoch stamped into every replicated batch decides *safety* (a
// deposed leader's writes carry a stale epoch and are fenced by
// followers, never silently applied).
//
// The Elector interface is deliberately tiny so backends are pluggable:
// FileLease (this package) elects over a shared directory, Manual is a
// test/operator-driven elector, and a future etcd- or peer-lease-backed
// backend slots in without touching the platform.
package election

import "sync"

// Role is a node's position in the replica set.
type Role int

// Roles. The zero value is Follower so an unstarted elector never
// claims leadership by accident.
const (
	// Follower must not accept writes; it tails the leader in State.Leader.
	Follower Role = iota
	// Leader holds the lease and may accept writes at State.Epoch.
	Leader
)

func (r Role) String() string {
	if r == Leader {
		return "leader"
	}
	return "follower"
}

// State is one election outcome: the role this node should assume, the
// epoch that outcome is valid for, and the leader's advertised URL
// (self when leading, "" while no leader is known).
//
// Epochs are monotonic per lease: every acquisition observes the
// previous holder's epoch and claims a strictly greater one, so two
// leaders can never be legitimate at the same epoch and a batch's epoch
// totally orders leadership terms.
type State struct {
	Role   Role
	Epoch  uint64
	Leader string
}

// Elector runs leader election for one node. Implementations must be
// safe for concurrent use.
type Elector interface {
	// Start begins electing and delivers every state change to notify.
	// floor seeds epoch monotonicity: any epoch this elector claims is
	// strictly greater than floor (a restarted node passes the highest
	// epoch recovered from its journal, so its new term outranks every
	// batch it ever shipped). notify is called from the elector's own
	// goroutine and must return promptly — long transitions (rebuilds,
	// re-bootstraps) belong on the receiver's side of a channel.
	Start(floor uint64, notify func(State))
	// State returns the most recently determined state.
	State() State
	// Stop ceases participating. A leader's lease is left to expire
	// naturally (same as a crash), so the handover path is identical
	// whether the leader stopped cleanly or died.
	Stop()
}

// Yielder is an optional Elector capability: a node that won an
// election but should not lead — the platform's caught-up promotion
// gate found a peer holding more history — calls Yield to step aside.
// The elector releases whatever claim it holds and refrains from
// claiming again for roughly one election cycle, opening a window for
// the more caught-up peer to win. Yield is advisory: an elector without
// it (or a peer that never claims) leaves the original winner to lead
// after the gate's deferral budget runs out, so availability is never
// hostage to the optimization.
type Yielder interface {
	Yield()
}

// Manual is an operator/test-driven elector: Set decides the state.
// It implements Elector with no background machinery, which makes
// split-brain scenarios (a deposed leader that still believes it leads)
// directly constructible in tests.
type Manual struct {
	mu     sync.Mutex
	cur    State
	notify func(State)
}

// NewManual returns a Manual elector in the zero (follower, epoch 0,
// no leader) state.
func NewManual() *Manual { return &Manual{} }

// Start records the notify hook and delivers the current state so late
// starters converge with states Set before Start.
func (m *Manual) Start(floor uint64, notify func(State)) {
	m.mu.Lock()
	m.notify = notify
	if m.cur.Epoch < floor {
		m.cur.Epoch = floor
	}
	st := m.cur
	m.mu.Unlock()
	if notify != nil {
		notify(st)
	}
}

// Set forces the elector into st and notifies the subscriber.
func (m *Manual) Set(st State) {
	m.mu.Lock()
	m.cur = st
	notify := m.notify
	m.mu.Unlock()
	if notify != nil {
		notify(st)
	}
}

// State returns the last Set (or Start-adjusted) state.
func (m *Manual) State() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cur
}

// Stop is a no-op: Manual has no background loop.
func (m *Manual) Stop() {}
