package client_test

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"

	"hive"
	"hive/api"
	"hive/client"
	"hive/internal/server"
)

func newClient(t *testing.T, opts ...client.Option) (*client.Client, *hive.Platform) {
	t.Helper()
	p, err := hive.Open(hive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(p))
	t.Cleanup(func() {
		ts.Close()
		p.Close()
	})
	return client.New(ts.URL, opts...), p
}

// seedSDK drives the Zach scenario entirely through the SDK.
func seedSDK(t *testing.T, c *client.Client) {
	t.Helper()
	ctx := context.Background()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, u := range []api.User{
		{ID: "zach", Name: "Zach", Affiliation: "ASU", Interests: []string{"graphs"}},
		{ID: "ann", Name: "Ann", Affiliation: "UniTo", Interests: []string{"graphs"}},
		{ID: "aaron", Name: "Aaron", Affiliation: "MPI"},
	} {
		must(c.CreateUser(ctx, u))
	}
	must(c.CreateConference(ctx, api.Conference{ID: "edbt13", Name: "EDBT 2013"}))
	must(c.CreateSession(ctx, api.Session{ID: "s1", ConferenceID: "edbt13",
		Title: "Graph processing at scale", Hashtag: "#s1"}))
	must(c.CreatePaper(ctx, api.Paper{ID: "p1", Title: "Graph partitioning",
		Abstract: "We partition graphs.", Authors: []string{"ann"},
		ConferenceID: "edbt13", SessionID: "s1"}))
	must(c.CreatePresentation(ctx, api.Presentation{ID: "pr1", PaperID: "p1", Owner: "ann",
		Text: "Graph partitioning slides. Communication costs matter."}))
	must(c.Connect(ctx, "zach", "ann"))
	must(c.Follow(ctx, "aaron", "zach"))
	must(c.CheckIn(ctx, "s1", "zach"))
	must(c.Ask(ctx, api.Question{ID: "q1", Author: "zach", Target: "p1", Text: "How do cuts scale?"}))
	must(c.Answer(ctx, api.Answer{ID: "a1", QuestionID: "q1", Author: "ann", Text: "Linearly."}))
	must(c.Comment(ctx, api.Comment{ID: "c1", Author: "aaron", Target: "p1", Text: "Neat."}))
	must(c.CreateWorkpad(ctx, api.Workpad{ID: "w1", Owner: "zach", Name: "ctx"}))
	must(c.AddWorkpadItem(ctx, "w1", api.WorkpadItem{Kind: hive.ItemPaper, Ref: "p1"}))
	must(c.ActivateWorkpad(ctx, "zach", "w1"))
}

// TestSDKFullSurface exercises every v1 endpoint through the SDK.
func TestSDKFullSurface(t *testing.T) {
	c, _ := newClient(t)
	ctx := context.Background()
	seedSDK(t, c)

	u, err := c.GetUser(ctx, "zach")
	if err != nil || u.Name != "Zach" {
		t.Fatalf("GetUser = %+v, %v", u, err)
	}
	users, err := c.Users(ctx, "", 2)
	if err != nil || len(users.Items) != 2 || users.NextCursor == "" {
		t.Fatalf("Users page = %+v, %v", users, err)
	}
	rest, err := c.Users(ctx, users.NextCursor, 2)
	if err != nil || len(rest.Items) != 1 || rest.NextCursor != "" {
		t.Fatalf("Users page 2 = %+v, %v", rest, err)
	}
	att, err := c.Attendees(ctx, "s1", "", 0)
	if err != nil || len(att.Items) != 1 || att.Items[0] != "zach" {
		t.Fatalf("Attendees = %+v, %v", att, err)
	}
	wp, err := c.ActiveWorkpad(ctx, "zach")
	if err != nil || wp.ID != "w1" || len(wp.Items) != 1 {
		t.Fatalf("ActiveWorkpad = %+v, %v", wp, err)
	}
	feed, err := c.Feed(ctx, "aaron", "", 0)
	if err != nil || len(feed.Items) == 0 {
		t.Fatalf("Feed = %+v, %v", feed, err)
	}
	// Tag normalization: hashed and bare spellings agree.
	evs, err := c.TagEvents(ctx, "#s1", "", 0)
	if err != nil || len(evs.Items) == 0 {
		t.Fatalf("TagEvents(#s1) = %+v, %v", evs, err)
	}
	bare, err := c.TagEvents(ctx, "s1", "", 0)
	if err != nil || len(bare.Items) != len(evs.Items) {
		t.Fatalf("TagEvents(s1) = %+v, %v", bare, err)
	}

	ex, err := c.Relationship(ctx, "zach", "ann")
	if err != nil || len(ex.Evidences) == 0 {
		t.Fatalf("Relationship = %+v, %v", ex, err)
	}
	if _, err := c.PeerRecommendations(ctx, "zach", "", 3); err != nil {
		t.Fatalf("PeerRecommendations: %v", err)
	}
	if _, err := c.ResourceRecommendations(ctx, "zach", true, "", 3); err != nil {
		t.Fatalf("ResourceRecommendations: %v", err)
	}
	if _, err := c.SuggestSessions(ctx, "aaron", "edbt13", "", 3); err != nil {
		t.Fatalf("SuggestSessions: %v", err)
	}
	res, err := c.Search(ctx, "graph partitioning", "", "", 5)
	if err != nil || len(res.Items) == 0 {
		t.Fatalf("Search = %+v, %v", res, err)
	}
	ctxRes, err := c.Search(ctx, "graph partitioning", "zach", "", 5)
	if err != nil || len(ctxRes.Items) == 0 {
		t.Fatalf("context Search = %+v, %v", ctxRes, err)
	}
	snips, err := c.Preview(ctx, "zach", "pres/pr1", 2)
	if err != nil || len(snips) == 0 {
		t.Fatalf("Preview = %+v, %v", snips, err)
	}
	sum, err := c.Digest(ctx, "aaron", 3)
	if err != nil || len(sum.Rows) == 0 {
		t.Fatalf("Digest = %+v, %v", sum, err)
	}
	comms, err := c.Communities(ctx, "", 0)
	if err != nil || len(comms.Items) == 0 {
		t.Fatalf("Communities = %+v, %v", comms, err)
	}
	hits, err := c.History(ctx, "zach", "checkin", false, "", 0)
	if err != nil || len(hits.Items) == 0 {
		t.Fatalf("History = %+v, %v", hits, err)
	}
	revs, err := c.ResourceRelationship(ctx, "ann", "p1")
	if err != nil || len(revs) == 0 {
		t.Fatalf("ResourceRelationship = %+v, %v", revs, err)
	}
	paths, err := c.KnowledgePaths(ctx, "user:ann", "session:s1", 2)
	if err != nil || len(paths) == 0 {
		t.Fatalf("KnowledgePaths = %+v, %v", paths, err)
	}
	if err := c.Refresh(ctx, true); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	h, err := c.Healthz(ctx)
	if err != nil || h.Status != "ok" || !h.Snapshot {
		t.Fatalf("Healthz = %+v, %v", h, err)
	}
}

// TestSDKErrorsAreTyped: non-2xx responses surface as *api.Error with
// the stable code and HTTP status.
func TestSDKErrorsAreTyped(t *testing.T) {
	c, _ := newClient(t)
	ctx := context.Background()

	_, err := c.GetUser(ctx, "ghost")
	var ae *api.Error
	if !errors.As(err, &ae) {
		t.Fatalf("err = %T %v, want *api.Error", err, err)
	}
	if ae.Code != api.CodeNotFound || ae.HTTPStatus != 404 {
		t.Fatalf("error = %+v", ae)
	}
	if !api.IsCode(err, api.CodeNotFound) {
		t.Fatal("IsCode(not_found) = false")
	}
	if err := c.CreateUser(ctx, api.User{}); !api.IsCode(err, api.CodeInvalidArgument) {
		t.Fatalf("empty user err = %v", err)
	}
}

// TestSDKBatch: one call ingests a mixed entity array.
func TestSDKBatch(t *testing.T) {
	c, p := newClient(t)
	ctx := context.Background()

	var ents []api.BatchEntity
	add := func(kind string, v any) {
		ent, err := api.NewBatchEntity(kind, v)
		if err != nil {
			t.Fatal(err)
		}
		ents = append(ents, ent)
	}
	add(api.KindUser, api.User{ID: "u1", Name: "One"})
	add(api.KindUser, api.User{ID: "u2", Name: "Two"})
	add(api.KindConference, api.Conference{ID: "c1", Name: "Conf"})
	add(api.KindConnection, api.ConnectRequest{A: "u1", B: "u2"})

	br, err := c.Batch(ctx, ents)
	if err != nil || br.Applied != 4 || br.Failed != 0 {
		t.Fatalf("Batch = %+v, %v", br, err)
	}
	if !p.Connected("u1", "u2") {
		t.Fatal("batch connection not applied")
	}
}

// TestSDKETagCache: repeated knowledge reads of an unchanged snapshot
// are served via 304 revalidation.
func TestSDKETagCache(t *testing.T) {
	c, p := newClient(t, client.WithETagCache())
	ctx := context.Background()
	seedSDK(t, c)
	if err := p.Refresh(); err != nil {
		t.Fatal(err)
	}

	first, err := c.Search(ctx, "graph partitioning", "", "", 5)
	if err != nil {
		t.Fatal(err)
	}
	_, hits0 := c.Stats()
	second, err := c.Search(ctx, "graph partitioning", "", "", 5)
	if err != nil {
		t.Fatal(err)
	}
	_, hits1 := c.Stats()
	if hits1 != hits0+1 {
		t.Fatalf("cache hits %d -> %d, want one 304 revalidation", hits0, hits1)
	}
	if len(first.Items) != len(second.Items) {
		t.Fatalf("cached page mismatch: %d vs %d items", len(first.Items), len(second.Items))
	}

	// A mutation + refresh rotates the generation: next read is a miss.
	if err := c.CreateUser(ctx, api.User{ID: "new", Name: "New"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Refresh(ctx, true); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Search(ctx, "graph partitioning", "", "", 5); err != nil {
		t.Fatal(err)
	}
	if _, hits2 := c.Stats(); hits2 != hits1 {
		t.Fatalf("stale tag wrongly revalidated: hits %d -> %d", hits1, hits2)
	}
}

// TestCollect walks pages to exhaustion.
func TestCollect(t *testing.T) {
	c, p := newClient(t)
	ctx := context.Background()
	const n = 9
	for i := 0; i < n; i++ {
		if err := p.RegisterUser(hive.User{ID: fmt.Sprintf("u%02d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	all, err := client.Collect(ctx, func(cur string) (api.Page[string], error) {
		return c.Users(ctx, cur, 4)
	})
	if err != nil || len(all) != n {
		t.Fatalf("Collect = %d items, %v", len(all), err)
	}
}
